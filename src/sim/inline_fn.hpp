/**
 * @file
 * InlineFn: a move-only callable with fixed inline storage.
 *
 * The event kernel fires tens of millions of callbacks per simulated
 * run; std::function heap-allocates every closure larger than its tiny
 * SBO (16 bytes in libstdc++), which made the allocator the hottest
 * function in the simulator. InlineFn stores the capture in the object
 * itself — there is no heap fallback, and a capture that does not fit
 * is rejected at compile time, which doubles as an audit that keeps
 * hot-path closures small.
 *
 * The capacity default (64 bytes) is sized to the largest closure on
 * the simulation hot path (ViaComm::sendRmwFile captures seven words
 * plus a Payload handle). Layers that store bigger thunks off the
 * event path (e.g. core::CreditGate) instantiate a wider InlineFn.
 */

#ifndef PRESS_SIM_INLINE_FN_HPP
#define PRESS_SIM_INLINE_FN_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace press::sim {

template <std::size_t Capacity = 64>
class InlineFn
{
  public:
    static constexpr std::size_t capacity() { return Capacity; }

    /** True when a callable of type @p F fits (size and alignment). */
    template <typename F>
    static constexpr bool fits =
        sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
        std::is_move_constructible_v<F>;

    InlineFn() = default;
    InlineFn(std::nullptr_t) {} // NOLINT: mirrors std::function

    /**
     * Wrap @p fn. Participates only when the (decayed) callable fits in
     * the inline storage, so an oversized capture is a compile error at
     * the construction site — shrink the capture (capture a pointer to
     * pooled state) or widen the instantiation.
     */
    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                 std::is_invocable_r_v<void, std::remove_cvref_t<F> &> &&
                 fits<std::remove_cvref_t<F>>)
    InlineFn(F &&fn) // NOLINT: implicit, like std::function
    {
        using Fn = std::remove_cvref_t<F>;
        ::new (static_cast<void *>(_storage)) Fn(std::forward<F>(fn));
        _invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
        // Trivially-copyable captures (the common case: pointers and
        // integers) relocate by plain memcpy — null ops marks them.
        if constexpr (std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn>)
            _ops = nullptr;
        else
            _ops = &kOps<Fn>;
    }

    InlineFn(InlineFn &&other) noexcept { moveFrom(other); }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFn &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    /** Invoke. Undefined when empty. */
    void
    operator()()
    {
        _invoke(_storage);
    }

    explicit operator bool() const { return _invoke != nullptr; }

  private:
    struct Ops {
        /** Move-construct into @p dst from @p src, destroying @p src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops kOps = {
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    void
    reset()
    {
        if (_invoke) {
            if (_ops)
                _ops->destroy(_storage);
            _invoke = nullptr;
        }
    }

    void
    moveFrom(InlineFn &other)
    {
        if (other._invoke) {
            if (other._ops)
                other._ops->relocate(_storage, other._storage);
            else
                __builtin_memcpy(_storage, other._storage, Capacity);
            _invoke = other._invoke;
            _ops = other._ops;
            other._invoke = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _storage[Capacity];
    /** Invocation target, stored flat so firing an event is a single
     *  indirect call with no table load; null means empty. */
    void (*_invoke)(void *) = nullptr;
    const Ops *_ops = nullptr;
};

} // namespace press::sim

#endif // PRESS_SIM_INLINE_FN_HPP
