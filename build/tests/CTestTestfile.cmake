# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util_random[1]_include.cmake")
include("/root/repo/build/tests/test_util_table[1]_include.cmake")
include("/root/repo/build/tests/test_sim_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_sim_resource[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_net_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_via_memory[1]_include.cmake")
include("/root/repo/build/tests/test_via_queues[1]_include.cmake")
include("/root/repo/build/tests/test_via_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_tcpnet[1]_include.cmake")
include("/root/repo/build/tests/test_osnode[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_core_directories[1]_include.cmake")
include("/root/repo/build/tests/test_core_credit[1]_include.cmake")
include("/root/repo/build/tests/test_core_comm[1]_include.cmake")
include("/root/repo/build/tests/test_core_server[1]_include.cmake")
include("/root/repo/build/tests/test_core_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_core_stress[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_core_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_via_backed[1]_include.cmake")
include("/root/repo/build/tests/test_core_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_workload_clf[1]_include.cmake")
