file(REMOVE_RECURSE
  "CMakeFiles/test_via_backed.dir/test_via_backed.cpp.o"
  "CMakeFiles/test_via_backed.dir/test_via_backed.cpp.o.d"
  "test_via_backed"
  "test_via_backed.pdb"
  "test_via_backed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_via_backed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
