# Empty dependencies file for test_via_backed.
# This may be replaced when dependencies are built.
