file(REMOVE_RECURSE
  "CMakeFiles/test_core_server.dir/test_core_server.cpp.o"
  "CMakeFiles/test_core_server.dir/test_core_server.cpp.o.d"
  "test_core_server"
  "test_core_server.pdb"
  "test_core_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
