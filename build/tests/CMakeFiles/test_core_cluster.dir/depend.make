# Empty dependencies file for test_core_cluster.
# This may be replaced when dependencies are built.
