file(REMOVE_RECURSE
  "CMakeFiles/test_core_cluster.dir/test_core_cluster.cpp.o"
  "CMakeFiles/test_core_cluster.dir/test_core_cluster.cpp.o.d"
  "test_core_cluster"
  "test_core_cluster.pdb"
  "test_core_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
