# Empty compiler generated dependencies file for test_core_credit.
# This may be replaced when dependencies are built.
