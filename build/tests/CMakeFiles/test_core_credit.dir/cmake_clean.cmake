file(REMOVE_RECURSE
  "CMakeFiles/test_core_credit.dir/test_core_credit.cpp.o"
  "CMakeFiles/test_core_credit.dir/test_core_credit.cpp.o.d"
  "test_core_credit"
  "test_core_credit.pdb"
  "test_core_credit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
