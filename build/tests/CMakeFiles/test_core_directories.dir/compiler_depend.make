# Empty compiler generated dependencies file for test_core_directories.
# This may be replaced when dependencies are built.
