file(REMOVE_RECURSE
  "CMakeFiles/test_core_directories.dir/test_core_directories.cpp.o"
  "CMakeFiles/test_core_directories.dir/test_core_directories.cpp.o.d"
  "test_core_directories"
  "test_core_directories.pdb"
  "test_core_directories[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_directories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
