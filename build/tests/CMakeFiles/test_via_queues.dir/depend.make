# Empty dependencies file for test_via_queues.
# This may be replaced when dependencies are built.
