file(REMOVE_RECURSE
  "CMakeFiles/test_via_queues.dir/test_via_queues.cpp.o"
  "CMakeFiles/test_via_queues.dir/test_via_queues.cpp.o.d"
  "test_via_queues"
  "test_via_queues.pdb"
  "test_via_queues[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_via_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
