file(REMOVE_RECURSE
  "CMakeFiles/test_core_comm.dir/test_core_comm.cpp.o"
  "CMakeFiles/test_core_comm.dir/test_core_comm.cpp.o.d"
  "test_core_comm"
  "test_core_comm.pdb"
  "test_core_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
