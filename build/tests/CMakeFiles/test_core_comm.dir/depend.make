# Empty dependencies file for test_core_comm.
# This may be replaced when dependencies are built.
