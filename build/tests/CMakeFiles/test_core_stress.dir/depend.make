# Empty dependencies file for test_core_stress.
# This may be replaced when dependencies are built.
