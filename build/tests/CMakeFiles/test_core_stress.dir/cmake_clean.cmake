file(REMOVE_RECURSE
  "CMakeFiles/test_core_stress.dir/test_core_stress.cpp.o"
  "CMakeFiles/test_core_stress.dir/test_core_stress.cpp.o.d"
  "test_core_stress"
  "test_core_stress.pdb"
  "test_core_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
