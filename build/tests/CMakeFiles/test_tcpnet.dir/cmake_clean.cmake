file(REMOVE_RECURSE
  "CMakeFiles/test_tcpnet.dir/test_tcpnet.cpp.o"
  "CMakeFiles/test_tcpnet.dir/test_tcpnet.cpp.o.d"
  "test_tcpnet"
  "test_tcpnet.pdb"
  "test_tcpnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcpnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
