# Empty dependencies file for test_tcpnet.
# This may be replaced when dependencies are built.
