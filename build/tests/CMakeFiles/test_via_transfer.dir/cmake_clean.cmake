file(REMOVE_RECURSE
  "CMakeFiles/test_via_transfer.dir/test_via_transfer.cpp.o"
  "CMakeFiles/test_via_transfer.dir/test_via_transfer.cpp.o.d"
  "test_via_transfer"
  "test_via_transfer.pdb"
  "test_via_transfer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_via_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
