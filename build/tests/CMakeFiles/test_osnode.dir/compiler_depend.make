# Empty compiler generated dependencies file for test_osnode.
# This may be replaced when dependencies are built.
