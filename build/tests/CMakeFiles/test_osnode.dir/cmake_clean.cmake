file(REMOVE_RECURSE
  "CMakeFiles/test_osnode.dir/test_osnode.cpp.o"
  "CMakeFiles/test_osnode.dir/test_osnode.cpp.o.d"
  "test_osnode"
  "test_osnode.pdb"
  "test_osnode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
