# Empty compiler generated dependencies file for test_via_memory.
# This may be replaced when dependencies are built.
