file(REMOVE_RECURSE
  "CMakeFiles/test_via_memory.dir/test_via_memory.cpp.o"
  "CMakeFiles/test_via_memory.dir/test_via_memory.cpp.o.d"
  "test_via_memory"
  "test_via_memory.pdb"
  "test_via_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_via_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
