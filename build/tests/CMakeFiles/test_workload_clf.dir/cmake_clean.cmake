file(REMOVE_RECURSE
  "CMakeFiles/test_workload_clf.dir/test_workload_clf.cpp.o"
  "CMakeFiles/test_workload_clf.dir/test_workload_clf.cpp.o.d"
  "test_workload_clf"
  "test_workload_clf.pdb"
  "test_workload_clf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_clf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
