# Empty dependencies file for test_workload_clf.
# This may be replaced when dependencies are built.
