# Empty compiler generated dependencies file for fig8_overhead_hitrate.
# This may be replaced when dependencies are built.
