file(REMOVE_RECURSE
  "CMakeFiles/table1_traces.dir/table1_traces.cpp.o"
  "CMakeFiles/table1_traces.dir/table1_traces.cpp.o.d"
  "table1_traces"
  "table1_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
