file(REMOVE_RECURSE
  "CMakeFiles/table2_dissemination_msgs.dir/table2_dissemination_msgs.cpp.o"
  "CMakeFiles/table2_dissemination_msgs.dir/table2_dissemination_msgs.cpp.o.d"
  "table2_dissemination_msgs"
  "table2_dissemination_msgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dissemination_msgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
