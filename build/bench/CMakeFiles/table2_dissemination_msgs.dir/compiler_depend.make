# Empty compiler generated dependencies file for table2_dissemination_msgs.
# This may be replaced when dependencies are built.
