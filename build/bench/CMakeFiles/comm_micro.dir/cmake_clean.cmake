file(REMOVE_RECURSE
  "CMakeFiles/comm_micro.dir/comm_micro.cpp.o"
  "CMakeFiles/comm_micro.dir/comm_micro.cpp.o.d"
  "comm_micro"
  "comm_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
