# Empty dependencies file for comm_micro.
# This may be replaced when dependencies are built.
