# Empty dependencies file for fig12_future_hitrate.
# This may be replaced when dependencies are built.
