file(REMOVE_RECURSE
  "CMakeFiles/fig12_future_hitrate.dir/fig12_future_hitrate.cpp.o"
  "CMakeFiles/fig12_future_hitrate.dir/fig12_future_hitrate.cpp.o.d"
  "fig12_future_hitrate"
  "fig12_future_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_future_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
