# Empty compiler generated dependencies file for fig4_dissemination.
# This may be replaced when dependencies are built.
