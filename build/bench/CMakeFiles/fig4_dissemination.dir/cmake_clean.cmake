file(REMOVE_RECURSE
  "CMakeFiles/fig4_dissemination.dir/fig4_dissemination.cpp.o"
  "CMakeFiles/fig4_dissemination.dir/fig4_dissemination.cpp.o.d"
  "fig4_dissemination"
  "fig4_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
