file(REMOVE_RECURSE
  "libpress_bench_common.a"
)
