# Empty dependencies file for press_bench_common.
# This may be replaced when dependencies are built.
