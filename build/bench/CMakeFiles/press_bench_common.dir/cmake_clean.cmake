file(REMOVE_RECURSE
  "CMakeFiles/press_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/press_bench_common.dir/bench_common.cpp.o.d"
  "libpress_bench_common.a"
  "libpress_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
