
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cpp" "bench/CMakeFiles/press_bench_common.dir/bench_common.cpp.o" "gcc" "bench/CMakeFiles/press_bench_common.dir/bench_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/press_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/press_model.dir/DependInfo.cmake"
  "/root/repo/build/src/via/CMakeFiles/press_via.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpnet/CMakeFiles/press_tcpnet.dir/DependInfo.cmake"
  "/root/repo/build/src/osnode/CMakeFiles/press_osnode.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/press_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/press_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/press_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/press_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/press_http.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/press_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
