file(REMOVE_RECURSE
  "CMakeFiles/fig13_future_filesize.dir/fig13_future_filesize.cpp.o"
  "CMakeFiles/fig13_future_filesize.dir/fig13_future_filesize.cpp.o.d"
  "fig13_future_filesize"
  "fig13_future_filesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_future_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
