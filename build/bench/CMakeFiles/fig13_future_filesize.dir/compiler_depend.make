# Empty compiler generated dependencies file for fig13_future_filesize.
# This may be replaced when dependencies are built.
