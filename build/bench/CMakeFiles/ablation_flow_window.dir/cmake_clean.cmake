file(REMOVE_RECURSE
  "CMakeFiles/ablation_flow_window.dir/ablation_flow_window.cpp.o"
  "CMakeFiles/ablation_flow_window.dir/ablation_flow_window.cpp.o.d"
  "ablation_flow_window"
  "ablation_flow_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flow_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
