# Empty dependencies file for ablation_flow_window.
# This may be replaced when dependencies are built.
