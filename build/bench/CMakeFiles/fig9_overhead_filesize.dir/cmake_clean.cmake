file(REMOVE_RECURSE
  "CMakeFiles/fig9_overhead_filesize.dir/fig9_overhead_filesize.cpp.o"
  "CMakeFiles/fig9_overhead_filesize.dir/fig9_overhead_filesize.cpp.o.d"
  "fig9_overhead_filesize"
  "fig9_overhead_filesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_overhead_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
