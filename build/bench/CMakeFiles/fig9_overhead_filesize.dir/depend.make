# Empty dependencies file for fig9_overhead_filesize.
# This may be replaced when dependencies are built.
