file(REMOVE_RECURSE
  "CMakeFiles/fig11_rmw_filesize.dir/fig11_rmw_filesize.cpp.o"
  "CMakeFiles/fig11_rmw_filesize.dir/fig11_rmw_filesize.cpp.o.d"
  "fig11_rmw_filesize"
  "fig11_rmw_filesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rmw_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
