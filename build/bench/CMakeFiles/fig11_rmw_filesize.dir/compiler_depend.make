# Empty compiler generated dependencies file for fig11_rmw_filesize.
# This may be replaced when dependencies are built.
