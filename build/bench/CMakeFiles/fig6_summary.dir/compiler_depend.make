# Empty compiler generated dependencies file for fig6_summary.
# This may be replaced when dependencies are built.
