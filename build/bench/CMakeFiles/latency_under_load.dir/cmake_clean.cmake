file(REMOVE_RECURSE
  "CMakeFiles/latency_under_load.dir/latency_under_load.cpp.o"
  "CMakeFiles/latency_under_load.dir/latency_under_load.cpp.o.d"
  "latency_under_load"
  "latency_under_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_under_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
