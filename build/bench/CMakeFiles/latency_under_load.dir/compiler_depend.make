# Empty compiler generated dependencies file for latency_under_load.
# This may be replaced when dependencies are built.
