file(REMOVE_RECURSE
  "CMakeFiles/scalability_nodes.dir/scalability_nodes.cpp.o"
  "CMakeFiles/scalability_nodes.dir/scalability_nodes.cpp.o.d"
  "scalability_nodes"
  "scalability_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
