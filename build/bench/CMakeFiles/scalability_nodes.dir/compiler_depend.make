# Empty compiler generated dependencies file for scalability_nodes.
# This may be replaced when dependencies are built.
