# Empty compiler generated dependencies file for fig5_versions.
# This may be replaced when dependencies are built.
