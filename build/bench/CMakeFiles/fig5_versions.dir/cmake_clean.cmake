file(REMOVE_RECURSE
  "CMakeFiles/fig5_versions.dir/fig5_versions.cpp.o"
  "CMakeFiles/fig5_versions.dir/fig5_versions.cpp.o.d"
  "fig5_versions"
  "fig5_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
