# Empty compiler generated dependencies file for table4_version_msgs.
# This may be replaced when dependencies are built.
