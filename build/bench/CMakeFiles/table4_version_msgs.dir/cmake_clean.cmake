file(REMOVE_RECURSE
  "CMakeFiles/table4_version_msgs.dir/table4_version_msgs.cpp.o"
  "CMakeFiles/table4_version_msgs.dir/table4_version_msgs.cpp.o.d"
  "table4_version_msgs"
  "table4_version_msgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_version_msgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
