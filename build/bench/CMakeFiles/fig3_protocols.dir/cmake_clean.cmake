file(REMOVE_RECURSE
  "CMakeFiles/fig3_protocols.dir/fig3_protocols.cpp.o"
  "CMakeFiles/fig3_protocols.dir/fig3_protocols.cpp.o.d"
  "fig3_protocols"
  "fig3_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
