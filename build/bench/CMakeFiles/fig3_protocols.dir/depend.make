# Empty dependencies file for fig3_protocols.
# This may be replaced when dependencies are built.
