file(REMOVE_RECURSE
  "CMakeFiles/fig10_rmw_hitrate.dir/fig10_rmw_hitrate.cpp.o"
  "CMakeFiles/fig10_rmw_hitrate.dir/fig10_rmw_hitrate.cpp.o.d"
  "fig10_rmw_hitrate"
  "fig10_rmw_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rmw_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
