# Empty compiler generated dependencies file for fig10_rmw_hitrate.
# This may be replaced when dependencies are built.
