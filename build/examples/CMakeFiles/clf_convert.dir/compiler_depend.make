# Empty compiler generated dependencies file for clf_convert.
# This may be replaced when dependencies are built.
