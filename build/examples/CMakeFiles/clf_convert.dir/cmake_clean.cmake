file(REMOVE_RECURSE
  "CMakeFiles/clf_convert.dir/clf_convert.cpp.o"
  "CMakeFiles/clf_convert.dir/clf_convert.cpp.o.d"
  "clf_convert"
  "clf_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clf_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
