# Empty dependencies file for press_sweep.
# This may be replaced when dependencies are built.
