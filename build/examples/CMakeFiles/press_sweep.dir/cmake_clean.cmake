file(REMOVE_RECURSE
  "CMakeFiles/press_sweep.dir/press_sweep.cpp.o"
  "CMakeFiles/press_sweep.dir/press_sweep.cpp.o.d"
  "press_sweep"
  "press_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
