file(REMOVE_RECURSE
  "CMakeFiles/coop_cache.dir/coop_cache.cpp.o"
  "CMakeFiles/coop_cache.dir/coop_cache.cpp.o.d"
  "coop_cache"
  "coop_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
