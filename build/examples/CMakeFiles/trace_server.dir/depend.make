# Empty dependencies file for trace_server.
# This may be replaced when dependencies are built.
