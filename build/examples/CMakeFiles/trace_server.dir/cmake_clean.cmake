file(REMOVE_RECURSE
  "CMakeFiles/trace_server.dir/trace_server.cpp.o"
  "CMakeFiles/trace_server.dir/trace_server.cpp.o.d"
  "trace_server"
  "trace_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
