file(REMOVE_RECURSE
  "CMakeFiles/press_osnode.dir/disk.cpp.o"
  "CMakeFiles/press_osnode.dir/disk.cpp.o.d"
  "CMakeFiles/press_osnode.dir/node.cpp.o"
  "CMakeFiles/press_osnode.dir/node.cpp.o.d"
  "libpress_osnode.a"
  "libpress_osnode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_osnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
