file(REMOVE_RECURSE
  "libpress_osnode.a"
)
