# Empty dependencies file for press_osnode.
# This may be replaced when dependencies are built.
