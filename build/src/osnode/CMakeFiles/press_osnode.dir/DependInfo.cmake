
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osnode/disk.cpp" "src/osnode/CMakeFiles/press_osnode.dir/disk.cpp.o" "gcc" "src/osnode/CMakeFiles/press_osnode.dir/disk.cpp.o.d"
  "/root/repo/src/osnode/node.cpp" "src/osnode/CMakeFiles/press_osnode.dir/node.cpp.o" "gcc" "src/osnode/CMakeFiles/press_osnode.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/press_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
