# Empty dependencies file for press_via.
# This may be replaced when dependencies are built.
