file(REMOVE_RECURSE
  "CMakeFiles/press_via.dir/completion_queue.cpp.o"
  "CMakeFiles/press_via.dir/completion_queue.cpp.o.d"
  "CMakeFiles/press_via.dir/descriptor.cpp.o"
  "CMakeFiles/press_via.dir/descriptor.cpp.o.d"
  "CMakeFiles/press_via.dir/memory.cpp.o"
  "CMakeFiles/press_via.dir/memory.cpp.o.d"
  "CMakeFiles/press_via.dir/via_nic.cpp.o"
  "CMakeFiles/press_via.dir/via_nic.cpp.o.d"
  "CMakeFiles/press_via.dir/virtual_interface.cpp.o"
  "CMakeFiles/press_via.dir/virtual_interface.cpp.o.d"
  "libpress_via.a"
  "libpress_via.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_via.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
