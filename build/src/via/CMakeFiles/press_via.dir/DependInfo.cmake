
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/via/completion_queue.cpp" "src/via/CMakeFiles/press_via.dir/completion_queue.cpp.o" "gcc" "src/via/CMakeFiles/press_via.dir/completion_queue.cpp.o.d"
  "/root/repo/src/via/descriptor.cpp" "src/via/CMakeFiles/press_via.dir/descriptor.cpp.o" "gcc" "src/via/CMakeFiles/press_via.dir/descriptor.cpp.o.d"
  "/root/repo/src/via/memory.cpp" "src/via/CMakeFiles/press_via.dir/memory.cpp.o" "gcc" "src/via/CMakeFiles/press_via.dir/memory.cpp.o.d"
  "/root/repo/src/via/via_nic.cpp" "src/via/CMakeFiles/press_via.dir/via_nic.cpp.o" "gcc" "src/via/CMakeFiles/press_via.dir/via_nic.cpp.o.d"
  "/root/repo/src/via/virtual_interface.cpp" "src/via/CMakeFiles/press_via.dir/virtual_interface.cpp.o" "gcc" "src/via/CMakeFiles/press_via.dir/virtual_interface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/press_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/press_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
