file(REMOVE_RECURSE
  "libpress_via.a"
)
