file(REMOVE_RECURSE
  "libpress_core.a"
)
