file(REMOVE_RECURSE
  "CMakeFiles/press_core.dir/cluster.cpp.o"
  "CMakeFiles/press_core.dir/cluster.cpp.o.d"
  "CMakeFiles/press_core.dir/comm.cpp.o"
  "CMakeFiles/press_core.dir/comm.cpp.o.d"
  "CMakeFiles/press_core.dir/config.cpp.o"
  "CMakeFiles/press_core.dir/config.cpp.o.d"
  "CMakeFiles/press_core.dir/directories.cpp.o"
  "CMakeFiles/press_core.dir/directories.cpp.o.d"
  "CMakeFiles/press_core.dir/messages.cpp.o"
  "CMakeFiles/press_core.dir/messages.cpp.o.d"
  "CMakeFiles/press_core.dir/press_server.cpp.o"
  "CMakeFiles/press_core.dir/press_server.cpp.o.d"
  "CMakeFiles/press_core.dir/tcp_comm.cpp.o"
  "CMakeFiles/press_core.dir/tcp_comm.cpp.o.d"
  "CMakeFiles/press_core.dir/via_comm.cpp.o"
  "CMakeFiles/press_core.dir/via_comm.cpp.o.d"
  "libpress_core.a"
  "libpress_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
