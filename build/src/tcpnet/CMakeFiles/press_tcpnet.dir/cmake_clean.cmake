file(REMOVE_RECURSE
  "CMakeFiles/press_tcpnet.dir/tcp_stack.cpp.o"
  "CMakeFiles/press_tcpnet.dir/tcp_stack.cpp.o.d"
  "libpress_tcpnet.a"
  "libpress_tcpnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_tcpnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
