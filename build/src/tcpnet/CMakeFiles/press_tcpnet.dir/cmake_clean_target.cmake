file(REMOVE_RECURSE
  "libpress_tcpnet.a"
)
