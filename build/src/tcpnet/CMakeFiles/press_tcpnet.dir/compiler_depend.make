# Empty compiler generated dependencies file for press_tcpnet.
# This may be replaced when dependencies are built.
