# Empty dependencies file for press_storage.
# This may be replaced when dependencies are built.
