
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/file_cache.cpp" "src/storage/CMakeFiles/press_storage.dir/file_cache.cpp.o" "gcc" "src/storage/CMakeFiles/press_storage.dir/file_cache.cpp.o.d"
  "/root/repo/src/storage/file_set.cpp" "src/storage/CMakeFiles/press_storage.dir/file_set.cpp.o" "gcc" "src/storage/CMakeFiles/press_storage.dir/file_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
