file(REMOVE_RECURSE
  "libpress_storage.a"
)
