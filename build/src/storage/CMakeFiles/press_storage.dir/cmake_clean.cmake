file(REMOVE_RECURSE
  "CMakeFiles/press_storage.dir/file_cache.cpp.o"
  "CMakeFiles/press_storage.dir/file_cache.cpp.o.d"
  "CMakeFiles/press_storage.dir/file_set.cpp.o"
  "CMakeFiles/press_storage.dir/file_set.cpp.o.d"
  "libpress_storage.a"
  "libpress_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
