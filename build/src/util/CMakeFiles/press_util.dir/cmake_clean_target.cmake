file(REMOVE_RECURSE
  "libpress_util.a"
)
