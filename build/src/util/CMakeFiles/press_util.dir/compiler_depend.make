# Empty compiler generated dependencies file for press_util.
# This may be replaced when dependencies are built.
