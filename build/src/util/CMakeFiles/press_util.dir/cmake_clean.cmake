file(REMOVE_RECURSE
  "CMakeFiles/press_util.dir/logging.cpp.o"
  "CMakeFiles/press_util.dir/logging.cpp.o.d"
  "CMakeFiles/press_util.dir/random.cpp.o"
  "CMakeFiles/press_util.dir/random.cpp.o.d"
  "CMakeFiles/press_util.dir/table.cpp.o"
  "CMakeFiles/press_util.dir/table.cpp.o.d"
  "libpress_util.a"
  "libpress_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
