# Empty dependencies file for press_net.
# This may be replaced when dependencies are built.
