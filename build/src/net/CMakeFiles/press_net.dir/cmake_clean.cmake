file(REMOVE_RECURSE
  "CMakeFiles/press_net.dir/fabric.cpp.o"
  "CMakeFiles/press_net.dir/fabric.cpp.o.d"
  "libpress_net.a"
  "libpress_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
