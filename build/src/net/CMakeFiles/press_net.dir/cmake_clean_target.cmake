file(REMOVE_RECURSE
  "libpress_net.a"
)
