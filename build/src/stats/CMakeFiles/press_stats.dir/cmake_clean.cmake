file(REMOVE_RECURSE
  "CMakeFiles/press_stats.dir/accumulator.cpp.o"
  "CMakeFiles/press_stats.dir/accumulator.cpp.o.d"
  "CMakeFiles/press_stats.dir/histogram.cpp.o"
  "CMakeFiles/press_stats.dir/histogram.cpp.o.d"
  "libpress_stats.a"
  "libpress_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
