file(REMOVE_RECURSE
  "libpress_stats.a"
)
