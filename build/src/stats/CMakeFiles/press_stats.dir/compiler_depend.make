# Empty compiler generated dependencies file for press_stats.
# This may be replaced when dependencies are built.
