# Empty dependencies file for press_model.
# This may be replaced when dependencies are built.
