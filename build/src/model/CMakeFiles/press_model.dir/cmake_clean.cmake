file(REMOVE_RECURSE
  "CMakeFiles/press_model.dir/params.cpp.o"
  "CMakeFiles/press_model.dir/params.cpp.o.d"
  "CMakeFiles/press_model.dir/press_model.cpp.o"
  "CMakeFiles/press_model.dir/press_model.cpp.o.d"
  "CMakeFiles/press_model.dir/zipf_math.cpp.o"
  "CMakeFiles/press_model.dir/zipf_math.cpp.o.d"
  "libpress_model.a"
  "libpress_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
