file(REMOVE_RECURSE
  "libpress_model.a"
)
