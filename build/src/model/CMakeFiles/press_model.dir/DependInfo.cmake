
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/params.cpp" "src/model/CMakeFiles/press_model.dir/params.cpp.o" "gcc" "src/model/CMakeFiles/press_model.dir/params.cpp.o.d"
  "/root/repo/src/model/press_model.cpp" "src/model/CMakeFiles/press_model.dir/press_model.cpp.o" "gcc" "src/model/CMakeFiles/press_model.dir/press_model.cpp.o.d"
  "/root/repo/src/model/zipf_math.cpp" "src/model/CMakeFiles/press_model.dir/zipf_math.cpp.o" "gcc" "src/model/CMakeFiles/press_model.dir/zipf_math.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
