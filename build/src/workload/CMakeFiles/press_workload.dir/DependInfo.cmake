
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/clf.cpp" "src/workload/CMakeFiles/press_workload.dir/clf.cpp.o" "gcc" "src/workload/CMakeFiles/press_workload.dir/clf.cpp.o.d"
  "/root/repo/src/workload/site_map.cpp" "src/workload/CMakeFiles/press_workload.dir/site_map.cpp.o" "gcc" "src/workload/CMakeFiles/press_workload.dir/site_map.cpp.o.d"
  "/root/repo/src/workload/stack_distance.cpp" "src/workload/CMakeFiles/press_workload.dir/stack_distance.cpp.o" "gcc" "src/workload/CMakeFiles/press_workload.dir/stack_distance.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/press_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/press_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/trace_gen.cpp" "src/workload/CMakeFiles/press_workload.dir/trace_gen.cpp.o" "gcc" "src/workload/CMakeFiles/press_workload.dir/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/press_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/press_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
