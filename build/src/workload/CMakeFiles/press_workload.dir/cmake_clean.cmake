file(REMOVE_RECURSE
  "CMakeFiles/press_workload.dir/clf.cpp.o"
  "CMakeFiles/press_workload.dir/clf.cpp.o.d"
  "CMakeFiles/press_workload.dir/site_map.cpp.o"
  "CMakeFiles/press_workload.dir/site_map.cpp.o.d"
  "CMakeFiles/press_workload.dir/stack_distance.cpp.o"
  "CMakeFiles/press_workload.dir/stack_distance.cpp.o.d"
  "CMakeFiles/press_workload.dir/trace.cpp.o"
  "CMakeFiles/press_workload.dir/trace.cpp.o.d"
  "CMakeFiles/press_workload.dir/trace_gen.cpp.o"
  "CMakeFiles/press_workload.dir/trace_gen.cpp.o.d"
  "libpress_workload.a"
  "libpress_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
