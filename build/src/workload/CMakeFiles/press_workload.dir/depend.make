# Empty dependencies file for press_workload.
# This may be replaced when dependencies are built.
