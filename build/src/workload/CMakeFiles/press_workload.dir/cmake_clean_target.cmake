file(REMOVE_RECURSE
  "libpress_workload.a"
)
