file(REMOVE_RECURSE
  "libpress_sim.a"
)
