# Empty dependencies file for press_sim.
# This may be replaced when dependencies are built.
