file(REMOVE_RECURSE
  "CMakeFiles/press_sim.dir/event_queue.cpp.o"
  "CMakeFiles/press_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/press_sim.dir/resource.cpp.o"
  "CMakeFiles/press_sim.dir/resource.cpp.o.d"
  "CMakeFiles/press_sim.dir/simulator.cpp.o"
  "CMakeFiles/press_sim.dir/simulator.cpp.o.d"
  "libpress_sim.a"
  "libpress_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
