file(REMOVE_RECURSE
  "CMakeFiles/press_http.dir/message.cpp.o"
  "CMakeFiles/press_http.dir/message.cpp.o.d"
  "CMakeFiles/press_http.dir/mime.cpp.o"
  "CMakeFiles/press_http.dir/mime.cpp.o.d"
  "CMakeFiles/press_http.dir/url.cpp.o"
  "CMakeFiles/press_http.dir/url.cpp.o.d"
  "libpress_http.a"
  "libpress_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/press_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
