file(REMOVE_RECURSE
  "libpress_http.a"
)
