# Empty dependencies file for press_http.
# This may be replaced when dependencies are built.
