/**
 * @file
 * Tests for the comm backends (TCP and VIA V0-V5) in isolation: message
 * delivery, piggy-backing, traffic accounting (Tables 2/4 semantics),
 * and flow control.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/tcp_comm.hpp"
#include "core/via_comm.hpp"
#include "osnode/node.hpp"

using namespace press;
using namespace press::core;

namespace {

/** A tiny N-node comm-only rig (no server logic). */
struct Rig {
    PressConfig config;
    sim::Simulator sim;
    std::unique_ptr<net::Fabric> fabric;
    std::vector<std::unique_ptr<osnode::Node>> nodes;
    std::vector<std::unique_ptr<ClusterComm>> comms;
    std::vector<std::vector<Incoming>> received;

    Rig(int n, Protocol proto, Version version,
        Dissemination diss = Dissemination::piggyBack())
    {
        config.nodes = n;
        config.protocol = proto;
        config.version = version;
        config.dissemination = diss;
        fabric = std::make_unique<net::Fabric>(
            sim,
            proto == Protocol::TcpFastEthernet
                ? net::FabricConfig::fastEthernet()
                : net::FabricConfig::clan(),
            n);
        received.resize(n);
        for (int i = 0; i < n; ++i)
            nodes.push_back(std::make_unique<osnode::Node>(sim, i));

        if (proto == Protocol::ViaClan) {
            std::vector<std::unique_ptr<ViaComm>> vias;
            for (int i = 0; i < n; ++i)
                vias.push_back(std::make_unique<ViaComm>(
                    sim, i, config, nodes[i]->cpu(), *fabric));
            ViaComm::linkMesh(vias);
            for (auto &v : vias)
                comms.push_back(std::move(v));
        } else {
            std::vector<std::unique_ptr<TcpComm>> tcps;
            for (int i = 0; i < n; ++i)
                tcps.push_back(std::make_unique<TcpComm>(
                    sim, i, n, nodes[i]->cpu(), *fabric,
                    config.calibration));
            TcpComm::connectMesh(tcps);
            for (auto &t : tcps)
                comms.push_back(std::move(t));
        }
        for (int i = 0; i < n; ++i) {
            comms[i]->setHandler([this, i](const Incoming &in) {
                received[i].push_back(in);
            });
        }
    }

    /** Count received messages of a kind at a node. */
    int
    countKind(int node, MsgKind kind) const
    {
        int c = 0;
        for (const auto &in : received[node])
            c += in.kind == kind;
        return c;
    }
};

} // namespace

// ---------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------

TEST(TcpCommTest, ForwardDelivered)
{
    Rig rig(2, Protocol::TcpClan, Version::V0);
    rig.comms[0]->sendForward(1, ForwardMsg{77, 5});
    rig.sim.run();
    ASSERT_EQ(rig.received[1].size(), 1u);
    const auto &in = rig.received[1][0];
    EXPECT_EQ(in.kind, MsgKind::Forward);
    EXPECT_EQ(in.from, 0);
    const auto *fwd = bodyAs<ForwardMsg>(in);
    ASSERT_TRUE(fwd);
    EXPECT_EQ(fwd->file, 77u);
    EXPECT_EQ(fwd->tag, 5u);
}

TEST(TcpCommTest, StatsMatchTableSemantics)
{
    Rig rig(2, Protocol::TcpClan, Version::V0);
    rig.comms[0]->setLoadProvider([] { return 3; });
    rig.comms[0]->sendForward(1, ForwardMsg{1, 1});
    rig.comms[0]->sendCaching(1, CachingMsg{1, true});
    rig.comms[0]->sendFile(1, FileMsg{1, 1, 10000});
    rig.sim.run();
    const auto &tx = rig.comms[0]->txStats();
    EXPECT_EQ(tx.of(MsgKind::Forward).msgs, 1u);
    // Piggy-backed load adds 4 bytes: 53 + 4.
    EXPECT_EQ(tx.of(MsgKind::Forward).bytes, 57u);
    EXPECT_EQ(tx.of(MsgKind::Caching).bytes, 63u);
    EXPECT_EQ(tx.of(MsgKind::File).msgs, 1u);
    EXPECT_EQ(tx.of(MsgKind::File).bytes,
              10000u + rig.config.calibration.sizes.fileHeader + 4u);
    // No flow-control messages over TCP.
    EXPECT_EQ(tx.of(MsgKind::Flow).msgs, 0u);
}

TEST(TcpCommTest, PiggyLoadReachesReceiver)
{
    Rig rig(2, Protocol::TcpClan, Version::V0);
    int load = 17;
    rig.comms[0]->setLoadProvider([&] { return load; });
    rig.comms[0]->sendForward(1, ForwardMsg{1, 1});
    rig.sim.run();
    ASSERT_EQ(rig.received[1].size(), 1u);
    EXPECT_EQ(rig.received[1][0].piggyLoad, 17);
}

TEST(TcpCommTest, ChargesIntraCommCpu)
{
    Rig rig(2, Protocol::TcpClan, Version::V0);
    rig.comms[0]->sendFile(1, FileMsg{1, 1, 20000});
    rig.sim.run();
    EXPECT_GT(rig.nodes[0]->cpu().busyTime(osnode::CatIntraComm), 0);
    EXPECT_GT(rig.nodes[1]->cpu().busyTime(osnode::CatIntraComm), 0);
    EXPECT_EQ(rig.nodes[0]->cpu().busyTime(osnode::CatService), 0);
}

// ---------------------------------------------------------------------
// VIA backend, across versions
// ---------------------------------------------------------------------

class ViaCommVersions : public ::testing::TestWithParam<Version>
{
};

TEST_P(ViaCommVersions, AllKindsDelivered)
{
    Rig rig(3, Protocol::ViaClan, GetParam());
    rig.comms[0]->sendForward(1, ForwardMsg{7, 1});
    rig.comms[0]->sendCaching(1, CachingMsg{8, true});
    rig.comms[0]->sendCaching(2, CachingMsg{8, true});
    rig.comms[1]->sendFile(0, FileMsg{7, 1, 30000});
    rig.sim.run();
    EXPECT_EQ(rig.countKind(1, MsgKind::Forward), 1);
    EXPECT_EQ(rig.countKind(1, MsgKind::Caching), 1);
    EXPECT_EQ(rig.countKind(2, MsgKind::Caching), 1);
    ASSERT_EQ(rig.countKind(0, MsgKind::File), 1);
    for (const auto &in : rig.received[0]) {
        if (in.kind != MsgKind::File)
            continue;
        const auto *f = bodyAs<FileMsg>(in);
        ASSERT_TRUE(f);
        EXPECT_EQ(f->bytes, 30000u);
        EXPECT_EQ(f->tag, 1u);
        rig.comms[0]->fileBufferDone(in.from);
    }
}

TEST_P(ViaCommVersions, FileMessageCountMatchesTable4)
{
    Version v = GetParam();
    Rig rig(2, Protocol::ViaClan, v);
    rig.comms[0]->sendFile(1, FileMsg{1, 1, 10000});
    rig.sim.run();
    const auto &tx = rig.comms[0]->txStats();
    bool rmw_file = static_cast<int>(v) >= 3;
    // RMW file transfers take two messages (data + metadata) — the
    // effect that doubles File counts in Table 4.
    EXPECT_EQ(tx.of(MsgKind::File).msgs, rmw_file ? 2u : 1u);
    EXPECT_GE(tx.of(MsgKind::File).bytes, 10000u);
    rig.comms[1]->fileBufferDone(0);
}

TEST_P(ViaCommVersions, ManyFilesRespectFlowControlWindow)
{
    Version v = GetParam();
    Rig rig(2, Protocol::ViaClan, v);
    const int files = 50;
    for (int i = 0; i < files; ++i)
        rig.comms[0]->sendFile(1, FileMsg{static_cast<std::uint32_t>(i),
                                          static_cast<std::uint32_t>(i),
                                          5000});
    // Consume buffers as they arrive (V4/V5 hold slots until done).
    rig.comms[1]->setHandler([&](const Incoming &in) {
        rig.received[1].push_back(in);
        if (in.kind == MsgKind::File)
            rig.comms[1]->fileBufferDone(in.from);
    });
    rig.sim.run();
    EXPECT_EQ(rig.countKind(1, MsgKind::File), files);
    // Flow-control credits flowed back (none over TCP, none needed
    // before the window fills).
    const auto &tx1 = rig.comms[1]->txStats();
    EXPECT_GT(tx1.of(MsgKind::Flow).msgs, 0u);
}

TEST_P(ViaCommVersions, DeliveryOrderPreservedPerPair)
{
    Rig rig(2, Protocol::ViaClan, GetParam());
    for (std::uint32_t i = 0; i < 20; ++i)
        rig.comms[0]->sendForward(1, ForwardMsg{i, i});
    rig.sim.run();
    std::uint32_t expect = 0;
    for (const auto &in : rig.received[1]) {
        if (in.kind != MsgKind::Forward)
            continue;
        const auto *f = bodyAs<ForwardMsg>(in);
        ASSERT_TRUE(f);
        EXPECT_EQ(f->file, expect++);
    }
    EXPECT_EQ(expect, 20u);
}

INSTANTIATE_TEST_SUITE_P(
    Versions, ViaCommVersions,
    ::testing::Values(Version::V0, Version::V1, Version::V2,
                      Version::V3, Version::V4, Version::V5),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });

TEST(ViaCommTest, V5ChargesRegistrationOnInsert)
{
    Rig r0(2, Protocol::ViaClan, Version::V0);
    Rig r5(2, Protocol::ViaClan, Version::V5);
    EXPECT_EQ(r0.comms[0]->cacheInsertCost(100000), 0);
    EXPECT_GT(r5.comms[0]->cacheInsertCost(100000), 0);
    EXPECT_GT(r5.comms[0]->cacheEvictCost(100000), 0);
    EXPECT_LT(r5.comms[0]->cacheEvictCost(100000),
              r5.comms[0]->cacheInsertCost(100000) + 1);
}

TEST(ViaCommTest, PollSweepGrowsWithClusterSize)
{
    Rig small(2, Protocol::ViaClan, Version::V3);
    Rig large(8, Protocol::ViaClan, Version::V3);
    EXPECT_GT(large.comms[0]->perRequestOverhead(),
              small.comms[0]->perRequestOverhead());
    Rig v0(8, Protocol::ViaClan, Version::V0);
    EXPECT_EQ(v0.comms[0]->perRequestOverhead(), 0);
}

TEST(ViaCommTest, LoadBroadcastRegularVsRmw)
{
    Rig reg(2, Protocol::ViaClan, Version::V0,
            Dissemination::broadcast(1, false));
    reg.comms[0]->sendLoad(1, LoadMsg{9});
    reg.sim.run();
    ASSERT_EQ(reg.countKind(1, MsgKind::Load), 1);
    const auto *lm = bodyAs<LoadMsg>(reg.received[1][0]);
    ASSERT_TRUE(lm);
    EXPECT_EQ(lm->load, 9);

    Rig rmw(2, Protocol::ViaClan, Version::V0,
            Dissemination::broadcast(1, true));
    rmw.comms[0]->sendLoad(1, LoadMsg{9});
    rmw.sim.run();
    EXPECT_EQ(rmw.countKind(1, MsgKind::Load), 1);
    // The RMW load write is cheaper on the receiving CPU.
    EXPECT_LT(rmw.nodes[1]->cpu().busyTime(),
              reg.nodes[1]->cpu().busyTime());
}

TEST(ViaCommTest, RmwControlCheaperThanRegularOnReceiver)
{
    Rig v0(2, Protocol::ViaClan, Version::V0);
    Rig v2(2, Protocol::ViaClan, Version::V2);
    v0.comms[0]->sendForward(1, ForwardMsg{1, 1});
    v2.comms[0]->sendForward(1, ForwardMsg{1, 1});
    v0.sim.run();
    v2.sim.run();
    EXPECT_LT(v2.nodes[1]->cpu().busyTime(),
              v0.nodes[1]->cpu().busyTime());
}

TEST(ViaCommTest, ZeroCopySendCheaperOnSender)
{
    Rig v4(2, Protocol::ViaClan, Version::V4);
    Rig v5(2, Protocol::ViaClan, Version::V5);
    v4.comms[0]->sendFile(1, FileMsg{1, 1, 100000});
    v5.comms[0]->sendFile(1, FileMsg{1, 1, 100000});
    v4.sim.run();
    v5.sim.run();
    EXPECT_LT(v5.nodes[0]->cpu().busyTime(),
              v4.nodes[0]->cpu().busyTime());
}

TEST(ViaCommTest, ZeroCopyRecvCheaperOnReceiver)
{
    Rig v3(2, Protocol::ViaClan, Version::V3);
    Rig v4(2, Protocol::ViaClan, Version::V4);
    v3.comms[0]->sendFile(1, FileMsg{1, 1, 100000});
    v4.comms[0]->sendFile(1, FileMsg{1, 1, 100000});
    v3.sim.run();
    v4.sim.run();
    EXPECT_LT(v4.nodes[1]->cpu().busyTime(),
              v3.nodes[1]->cpu().busyTime());
    v4.comms[1]->fileBufferDone(0);
}
