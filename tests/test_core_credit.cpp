/**
 * @file
 * Tests for window-based flow control primitives.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/credit_gate.hpp"

using press::core::CreditGate;
using press::core::CreditReturner;

TEST(CreditGate, RunsWhileCreditsLast)
{
    CreditGate g(2);
    int ran = 0;
    EXPECT_TRUE(g.acquire([&] { ++ran; }));
    EXPECT_TRUE(g.acquire([&] { ++ran; }));
    EXPECT_FALSE(g.acquire([&] { ++ran; }));
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(g.credits(), 0);
    EXPECT_EQ(g.backlog(), 1u);
    EXPECT_EQ(g.stalls(), 1u);
}

TEST(CreditGate, ReleaseDrainsQueueInOrder)
{
    CreditGate g(1);
    std::vector<int> order;
    g.acquire([&] { order.push_back(1); });
    g.acquire([&] { order.push_back(2); });
    g.acquire([&] { order.push_back(3); });
    g.release(1);
    g.release(1);
    g.release(1);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(g.credits(), 1);
    EXPECT_EQ(g.backlog(), 0u);
}

TEST(CreditGate, BatchReleaseRunsSeveral)
{
    CreditGate g(4);
    int ran = 0;
    for (int i = 0; i < 8; ++i)
        g.acquire([&] { ++ran; });
    EXPECT_EQ(ran, 4);
    g.release(4);
    EXPECT_EQ(ran, 8);
}

TEST(CreditGate, OverReleasePanics)
{
    CreditGate g(2);
    EXPECT_DEATH(g.release(3), "over-release");
}

TEST(CreditGate, NestedAcquireFromThunk)
{
    // A thunk that sends another message (acquires again) must not
    // deadlock or reorder.
    CreditGate g(1);
    std::vector<int> order;
    g.acquire([&] {
        order.push_back(1);
        g.acquire([&] { order.push_back(2); });
    });
    EXPECT_EQ(order, (std::vector<int>{1}));
    g.release(1);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CreditReturner, BatchesReturns)
{
    std::vector<int> sent;
    CreditReturner r(4, [&](int n) { sent.push_back(n); });
    for (int i = 0; i < 9; ++i)
        r.consumed();
    EXPECT_EQ(sent, (std::vector<int>{4, 4}));
    EXPECT_EQ(r.pending(), 1);
    r.flush();
    EXPECT_EQ(sent, (std::vector<int>{4, 4, 1}));
    r.flush(); // idempotent when empty
    EXPECT_EQ(sent.size(), 3u);
}

TEST(CreditReturner, BatchOfOneReturnsEach)
{
    std::vector<int> sent;
    CreditReturner r(1, [&](int n) { sent.push_back(n); });
    r.consumed();
    r.consumed();
    EXPECT_EQ(sent, (std::vector<int>{1, 1}));
}

TEST(GateAndReturner, ClosedLoopConserved)
{
    // Simulate a sender window against a consumer with batched credit
    // returns: every message eventually runs, credits never exceed the
    // window.
    CreditGate gate(8);
    int delivered = 0;
    CreditReturner ret(4, [&](int n) { gate.release(n); });
    for (int i = 0; i < 1000; ++i) {
        gate.acquire([&] {
            ++delivered;
            ret.consumed();
        });
        ASSERT_LE(gate.credits(), 8);
    }
    ret.flush();
    EXPECT_EQ(delivered, 1000);
    EXPECT_EQ(gate.backlog(), 0u);
}
