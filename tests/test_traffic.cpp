/**
 * @file
 * Unit tests for the open-loop traffic subsystem: the curve grammar,
 * integral/inversion consistency, interarrival statistics per shape,
 * and the population/session models' counter-based determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "traffic/population.hpp"
#include "traffic/rate_curve.hpp"
#include "traffic/session.hpp"
#include "traffic/traffic_model.hpp"
#include "util/units.hpp"

using namespace press;
using namespace press::traffic;

namespace {

/** Mean and coefficient of variation of the first @p n interarrival
 *  gaps of @p engine, in seconds. */
struct GapStats {
    double mean;
    double cv;
};

GapStats
gapStats(ArrivalEngine &engine, int n)
{
    double sum = 0, sum2 = 0;
    sim::Tick prev = 0;
    for (int i = 0; i < n; ++i) {
        sim::Tick at = engine.next();
        double gap = sim::nsToSeconds(at - prev);
        prev = at;
        sum += gap;
        sum2 += gap * gap;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    return {mean, std::sqrt(std::max(0.0, var)) / mean};
}

} // namespace

// ---- grammar --------------------------------------------------------

TEST(RateCurveGrammar, RoundTripsEveryShape)
{
    const std::string spec =
        "const:3000@0s;ramp:3000..5000/500ms@1s;"
        "diurnal:4000~1500/2s@2s;flash:3000^9000/150ms+600ms+300ms@5s";
    RateCurve curve;
    std::string err;
    ASSERT_TRUE(RateCurve::tryParse(spec, curve, err)) << err;
    EXPECT_EQ(curve.segments().size(), 4u);
    EXPECT_EQ(curve.spec(), spec);

    // The canonical rendering parses back to itself.
    RateCurve again;
    ASSERT_TRUE(RateCurve::tryParse(curve.spec(), again, err)) << err;
    EXPECT_EQ(again.spec(), spec);
}

TEST(RateCurveGrammar, RejectsMalformedSpecs)
{
    RateCurve out;
    std::string err;
    const char *bad[] = {
        "",                              // empty
        "const:0@0s",                    // zero rate
        "const:100@1s",                  // first segment not at 0
        "warp:100@0s",                   // unknown verb
        "const:100@0s;const:200@0s",     // non-increasing starts
        "ramp:100..200@0s",              // missing duration
        "diurnal:1000~1000/1s@0s",       // amplitude == base
        "flash:1000^500/1ms+1ms+1ms@0s", // peak below base
        "const:100@0s extra",            // trailing garbage
        "const:100",                     // missing @time
    };
    for (const char *spec : bad) {
        EXPECT_FALSE(RateCurve::tryParse(spec, out, err))
            << "accepted: " << spec;
        EXPECT_FALSE(err.empty());
    }
}

// ---- integral / inversion -------------------------------------------

TEST(RateCurve, InvertIsTheInverseOfIntegral)
{
    RateCurve curve;
    std::string err;
    ASSERT_TRUE(RateCurve::tryParse(
        "const:2000@0s;ramp:2000..6000/400ms@1s;"
        "diurnal:5000~2000/1s@2s;flash:4000^12000/100ms+300ms+200ms@4s",
        curve, err))
        << err;
    for (sim::Tick t = 50 * util::MS; t < 6 * util::SEC;
         t += 37 * util::MS) {
        double mass = curve.integral(t);
        sim::Tick back = curve.invert(mass);
        // invert returns the smallest tick reaching the mass; a tick of
        // slack absorbs the bisection's half-open rounding.
        EXPECT_NEAR(static_cast<double>(back), static_cast<double>(t),
                    2.0)
            << "at t=" << t;
    }
}

TEST(RateCurve, IntegralMatchesShapeAreas)
{
    // const 1000 for 1 s -> 1000 arrivals; ramp 1000..3000 over 1 s
    // -> 2000; diurnal's sinusoid integrates to 0 over a full period.
    RateCurve c1 = RateCurve::constant(1000);
    EXPECT_NEAR(c1.integral(util::SEC), 1000.0, 1e-6);

    RateCurve c2;
    c2.addRamp(0, 1000, 3000, util::SEC);
    EXPECT_NEAR(c2.integral(util::SEC), 2000.0, 1e-6);
    // After the ramp the rate holds at 3000.
    EXPECT_NEAR(c2.integral(2 * util::SEC), 5000.0, 1e-6);

    RateCurve c3;
    c3.addDiurnal(0, 2000, 800, util::SEC);
    EXPECT_NEAR(c3.integral(util::SEC), 2000.0, 1e-6);
    EXPECT_NEAR(c3.rateAt(util::SEC / 4), 2800.0, 1e-6);
    EXPECT_NEAR(c3.rateAt(3 * util::SEC / 4), 1200.0, 1e-6);

    RateCurve c4;
    c4.addFlash(0, 1000, 3000, util::SEC, util::SEC, util::SEC);
    // attack trapezoid 2000 + sustain 3000 + decay trapezoid 2000.
    EXPECT_NEAR(c4.integral(3 * util::SEC), 7000.0, 1e-6);
    EXPECT_NEAR(c4.rateAt(4 * util::SEC), 1000.0, 1e-6);
}

// ---- arrival statistics ---------------------------------------------

TEST(ArrivalEngine, ConstantRateGapsHavePoissonMeanAndCv)
{
    ArrivalEngine engine(RateCurve::constant(2000), 42);
    GapStats g = gapStats(engine, 20000);
    // Exponential gaps: mean 1/rate, CV 1.
    EXPECT_NEAR(g.mean, 1.0 / 2000.0, 0.02 / 2000.0);
    EXPECT_NEAR(g.cv, 1.0, 0.05);
}

TEST(ArrivalEngine, WindowedCountsTrackTheCurveIntegral)
{
    RateCurve curve;
    std::string err;
    ASSERT_TRUE(RateCurve::tryParse(
        "const:1000@0s;flash:1000^5000/200ms+400ms+200ms@1s;"
        "diurnal:2000~900/1s@3s",
        curve, err))
        << err;
    ArrivalEngine engine(curve, 7);
    // Count arrivals per 200 ms window over 5 s.
    constexpr sim::Tick Window = 200 * util::MS;
    std::vector<int> counts(25, 0);
    for (;;) {
        sim::Tick at = engine.next();
        auto idx = static_cast<std::size_t>(at / Window);
        if (idx >= counts.size())
            break;
        ++counts[idx];
    }
    for (std::size_t i = 0; i < counts.size(); ++i) {
        sim::Tick a = static_cast<sim::Tick>(i) * Window;
        double expect = curve.integral(a + Window) - curve.integral(a);
        // 5-sigma Poisson band.
        EXPECT_NEAR(counts[i], expect, 5.0 * std::sqrt(expect) + 1)
            << "window " << i;
    }
}

TEST(ArrivalEngine, SameSeedSameStreamDifferentSeedDiffers)
{
    ArrivalEngine a(RateCurve::constant(3000), 11);
    ArrivalEngine b(RateCurve::constant(3000), 11);
    ArrivalEngine c(RateCurve::constant(3000), 12);
    bool differs = false;
    for (int i = 0; i < 1000; ++i) {
        sim::Tick ta = a.next();
        ASSERT_EQ(ta, b.next());
        if (ta != c.next())
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(ArrivalEngine, RateScaleThinsArrivals)
{
    // Scale 1/8 (the session model's thinning at meanRequests = 8):
    // one-eighth the arrivals over the same horizon.
    ArrivalEngine full(RateCurve::constant(4000), 5, 1.0);
    ArrivalEngine thin(RateCurve::constant(4000), 5, 1.0 / 8.0);
    int nf = 0, nt = 0;
    while (full.next() < util::SEC)
        ++nf;
    while (thin.next() < util::SEC)
        ++nt;
    EXPECT_NEAR(nf, 4000, 5 * 64);
    EXPECT_NEAR(nt, 500, 5 * 23);
}

// ---- population -----------------------------------------------------

TEST(PopulationModel, HotWindowConcentratesDraws)
{
    PopulationSpec spec;
    spec.mode = PopulationSpec::Mode::Zipf;
    spec.alphaStart = spec.alphaEnd = 0.8;
    spec.hotCount = 8;
    spec.hotFraction = 0.85;
    spec.hotStart = util::SEC;
    spec.hotEnd = 2 * util::SEC;
    PopulationModel model(spec, 1000, 99);

    auto hot_share = [&](sim::Tick t) {
        int hot = 0;
        for (std::uint64_t k = 0; k < 4000; ++k)
            if (model.sampleRank(t, k) < 8)
                ++hot;
        return hot / 4000.0;
    };
    // Outside the window: plain Zipf(0.8) puts well under half the
    // mass on the top 8 of 1000 ranks. Inside: at least hotFraction.
    EXPECT_LT(hot_share(0), 0.5);
    EXPECT_GT(hot_share(util::SEC + util::MS), 0.84);
    EXPECT_LT(hot_share(2 * util::SEC), 0.5);
}

TEST(PopulationModel, AlphaDriftSkewsTheDistribution)
{
    PopulationSpec spec;
    spec.mode = PopulationSpec::Mode::Zipf;
    spec.alphaStart = 0.4;
    spec.alphaEnd = 1.2;
    spec.driftOver = 10 * util::SEC;
    PopulationModel model(spec, 1000, 7);
    EXPECT_NEAR(model.alphaAt(0), 0.4, 1e-9);
    EXPECT_NEAR(model.alphaAt(5 * util::SEC), 0.8, 1e-9);
    EXPECT_NEAR(model.alphaAt(20 * util::SEC), 1.2, 1e-9);

    auto top_share = [&](sim::Tick t) {
        int top = 0;
        for (std::uint64_t k = 0; k < 4000; ++k)
            if (model.sampleRank(t, k) < 50)
                ++top;
        return top / 4000.0;
    };
    // Higher alpha -> more mass on the head.
    EXPECT_GT(top_share(10 * util::SEC), top_share(0) + 0.1);
}

// ---- sessions -------------------------------------------------------

TEST(SessionModel, LengthsAreGeometricWithTheRequestedMean)
{
    SessionSpec spec;
    spec.enabled = true;
    spec.meanRequests = 8.0;
    SessionModel model(spec, 21);
    double sum = 0;
    std::uint32_t lo = 1000, hi = 0;
    for (std::uint64_t s = 0; s < 20000; ++s) {
        std::uint32_t len = model.length(s);
        ASSERT_GE(len, 1u);
        ASSERT_LE(len, spec.maxRequests);
        sum += len;
        lo = std::min(lo, len);
        hi = std::max(hi, len);
    }
    EXPECT_NEAR(sum / 20000.0, 8.0, 0.3);
    EXPECT_EQ(lo, 1u); // geometric mass at 1
    EXPECT_GT(hi, 20u);

    // Counter-based: the same session always draws the same length.
    EXPECT_EQ(model.length(123), model.length(123));
}

TEST(SessionModel, ThinkGapsAreExponential)
{
    SessionSpec spec;
    spec.enabled = true;
    spec.thinkMean = 2 * util::MS;
    SessionModel model(spec, 3);
    double sum = 0;
    for (std::uint64_t s = 0; s < 10000; ++s)
        sum += static_cast<double>(model.thinkGap(s, 1));
    EXPECT_NEAR(sum / 10000.0, static_cast<double>(2 * util::MS),
                0.05 * static_cast<double>(2 * util::MS));
}

// ---- scenarios ------------------------------------------------------

TEST(Scenarios, PresetsShapeAsAdvertised)
{
    EXPECT_FALSE(steadyScenario(4000).shaped() &&
                 steadyScenario(4000).curve.empty());
    EXPECT_NEAR(steadyScenario(4000).curve.meanRate(0, util::SEC), 4000,
                1e-6);
    // Diurnal averages to the base over a full period.
    EXPECT_NEAR(diurnalScenario(4000).curve.meanRate(0, 2 * util::SEC),
                4000, 1e-6);
    TrafficModel flash = flashScenario(3000);
    EXPECT_TRUE(flash.population.active());
    EXPECT_GT(flash.curve.rateAt(2 * util::SEC),
              2.5 * flash.curve.rateAt(0));
    TrafficModel ka = keepAliveScenario(4000);
    EXPECT_TRUE(ka.session.enabled);
    TrafficModel dyn = dynamicMixScenario(4000);
    EXPECT_GT(dyn.dynamicFraction, 0.0);
}
