/**
 * @file
 * Tests for the locality and load directories.
 */

#include <gtest/gtest.h>

#include "core/directories.hpp"

using press::core::CacheDirectory;
using press::core::LoadDirectory;
using press::util::Rng;

TEST(LoadDirectory, UpdatesAndReads)
{
    LoadDirectory d(4, 0);
    EXPECT_EQ(d.load(3), 0);
    d.update(3, 55);
    EXPECT_EQ(d.load(3), 55);
    d.setSelf(10);
    EXPECT_EQ(d.load(0), 10);
}

TEST(LoadDirectory, LeastLoadedBreaksTiesLow)
{
    LoadDirectory d(4, 0);
    d.update(0, 5);
    d.update(1, 3);
    d.update(2, 3);
    d.update(3, 9);
    EXPECT_EQ(d.leastLoaded(), 1);
}

TEST(CacheDirectory, UpdateAndQuery)
{
    CacheDirectory d(8);
    EXPECT_FALSE(d.anyoneCaches(42));
    d.update(3, 42, true);
    EXPECT_TRUE(d.anyoneCaches(42));
    EXPECT_TRUE(d.caches(3, 42));
    EXPECT_FALSE(d.caches(2, 42));
    d.update(5, 42, true);
    EXPECT_EQ(d.mask(42), (1u << 3) | (1u << 5));
    d.update(3, 42, false);
    EXPECT_FALSE(d.caches(3, 42));
    EXPECT_TRUE(d.anyoneCaches(42));
    d.update(5, 42, false);
    EXPECT_FALSE(d.anyoneCaches(42));
    EXPECT_EQ(d.knownFiles(), 0u);
}

TEST(CacheDirectory, EvictUnknownFileIsNoop)
{
    CacheDirectory d(4);
    d.update(1, 7, false);
    EXPECT_FALSE(d.anyoneCaches(7));
}

TEST(CacheDirectory, LeastLoadedCaching)
{
    CacheDirectory d(4);
    LoadDirectory loads(4, 0);
    d.update(1, 9, true);
    d.update(2, 9, true);
    loads.update(1, 50);
    loads.update(2, 20);
    EXPECT_EQ(d.leastLoadedCaching(9, loads), 2);
    loads.update(2, 90);
    EXPECT_EQ(d.leastLoadedCaching(9, loads), 1);
    EXPECT_EQ(d.leastLoadedCaching(1234, loads), -1);
}

TEST(CacheDirectory, RandomCachingCoversAllHolders)
{
    CacheDirectory d(8);
    d.update(2, 5, true);
    d.update(4, 5, true);
    d.update(7, 5, true);
    Rng rng(3);
    std::set<int> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(d.randomCaching(5, rng));
    EXPECT_EQ(seen, (std::set<int>{2, 4, 7}));
    EXPECT_EQ(d.randomCaching(999, rng), -1);
}

TEST(CacheDirectory, RejectsOversizedClusters)
{
    EXPECT_DEATH(CacheDirectory d(65), "1..64");
}
