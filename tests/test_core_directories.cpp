/**
 * @file
 * Tests for the locality and load directories (replicated and sharded).
 */

#include <gtest/gtest.h>

#include "core/directories.hpp"

using press::core::CacheDirectory;
using press::core::LoadDirectory;
using press::core::NodeMask;
using press::core::ShardedCacheDirectory;
using press::util::Rng;

TEST(NodeMask, SetTestClearAcrossWords)
{
    NodeMask m;
    EXPECT_TRUE(m.none());
    m.set(0);
    m.set(63);
    m.set(64);
    m.set(255);
    EXPECT_TRUE(m.test(0));
    EXPECT_TRUE(m.test(63));
    EXPECT_TRUE(m.test(64));
    EXPECT_TRUE(m.test(255));
    EXPECT_FALSE(m.test(1));
    EXPECT_EQ(m.count(), 4);
    m.clear(64);
    EXPECT_FALSE(m.test(64));
    EXPECT_EQ(m.count(), 3);
    EXPECT_TRUE(m.any());
}

TEST(LoadDirectory, UpdatesAndReads)
{
    LoadDirectory d(4, 0);
    EXPECT_EQ(d.load(3), 0);
    d.update(3, 55);
    EXPECT_EQ(d.load(3), 55);
    d.setSelf(10);
    EXPECT_EQ(d.load(0), 10);
}

TEST(LoadDirectory, LeastLoadedBreaksTiesLow)
{
    LoadDirectory d(4, 0);
    d.update(0, 5);
    d.update(1, 3);
    d.update(2, 3);
    d.update(3, 9);
    EXPECT_EQ(d.leastLoaded(), 1);
}

TEST(CacheDirectory, UpdateAndQuery)
{
    CacheDirectory d(8);
    EXPECT_FALSE(d.anyoneCaches(42));
    d.update(3, 42, true);
    EXPECT_TRUE(d.anyoneCaches(42));
    EXPECT_TRUE(d.caches(3, 42));
    EXPECT_FALSE(d.caches(2, 42));
    d.update(5, 42, true);
    EXPECT_EQ(d.mask(42).words(0), (1u << 3) | (1u << 5));
    d.update(3, 42, false);
    EXPECT_FALSE(d.caches(3, 42));
    EXPECT_TRUE(d.anyoneCaches(42));
    d.update(5, 42, false);
    EXPECT_FALSE(d.anyoneCaches(42));
    EXPECT_EQ(d.knownFiles(), 0u);
}

TEST(CacheDirectory, EvictUnknownFileIsNoop)
{
    CacheDirectory d(4);
    d.update(1, 7, false);
    EXPECT_FALSE(d.anyoneCaches(7));
}

TEST(CacheDirectory, LeastLoadedCaching)
{
    CacheDirectory d(4);
    LoadDirectory loads(4, 0);
    d.update(1, 9, true);
    d.update(2, 9, true);
    loads.update(1, 50);
    loads.update(2, 20);
    EXPECT_EQ(d.leastLoadedCaching(9, loads), 2);
    loads.update(2, 90);
    EXPECT_EQ(d.leastLoadedCaching(9, loads), 1);
    EXPECT_EQ(d.leastLoadedCaching(1234, loads), -1);
}

TEST(CacheDirectory, RandomCachingCoversAllHolders)
{
    CacheDirectory d(8);
    d.update(2, 5, true);
    d.update(4, 5, true);
    d.update(7, 5, true);
    Rng rng(3);
    std::set<int> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(d.randomCaching(5, rng));
    EXPECT_EQ(seen, (std::set<int>{2, 4, 7}));
    EXPECT_EQ(d.randomCaching(999, rng), -1);
}

TEST(CacheDirectory, RejectsOversizedClusters)
{
    EXPECT_DEATH(CacheDirectory d(257), "1..256");
}

TEST(ShardedCacheDirectory, OwnershipPartitionsFiles)
{
    const int nodes = 8, shards = 16;
    ShardedCacheDirectory d(nodes, 0, shards, 4);
    for (press::storage::FileId f = 0; f < 1000; ++f) {
        int s = ShardedCacheDirectory::shardOf(f, shards);
        EXPECT_GE(s, 0);
        EXPECT_LT(s, shards);
        int owner = d.ownerOf(f);
        EXPECT_GE(owner, 0);
        EXPECT_LT(owner, nodes);
        // Same shard -> same owner, deterministically.
        EXPECT_EQ(owner, ShardedCacheDirectory(nodes, 3, shards, 4)
                             .ownerOf(f));
    }
}

TEST(ShardedCacheDirectory, OwnerAnswersAuthoritatively)
{
    ShardedCacheDirectory d(4, 0, 4, 4);
    // Find a file node 0 owns.
    press::storage::FileId owned = 0;
    while (!d.owns(owned))
        ++owned;
    NodeMask m;
    EXPECT_EQ(d.lookup(owned, m), ShardedCacheDirectory::Answer::Owner);
    EXPECT_TRUE(m.none());
    d.update(2, owned, true);
    EXPECT_EQ(d.lookup(owned, m), ShardedCacheDirectory::Answer::Owner);
    EXPECT_TRUE(m.test(2));
    d.update(2, owned, false);
    EXPECT_EQ(d.lookup(owned, m), ShardedCacheDirectory::Answer::Owner);
    EXPECT_TRUE(m.none());
    EXPECT_EQ(d.ownedFiles(), 0u);
}

TEST(ShardedCacheDirectory, HotSetLearnsAndEvictsLru)
{
    ShardedCacheDirectory d(4, 0, 4, 2);
    // Collect files node 0 does NOT own.
    std::vector<press::storage::FileId> foreign;
    for (press::storage::FileId f = 0; foreign.size() < 3; ++f)
        if (!d.owns(f))
            foreign.push_back(f);

    NodeMask m;
    EXPECT_EQ(d.lookup(foreign[0], m),
              ShardedCacheDirectory::Answer::Unknown);
    d.hotLearn(foreign[0], 1, true);
    d.hotLearn(foreign[1], 2, true);
    EXPECT_EQ(d.hotFiles(), 2u);
    EXPECT_EQ(d.lookup(foreign[0], m), ShardedCacheDirectory::Answer::Hot);
    EXPECT_TRUE(m.test(1));
    // Touch foreign[0] so foreign[1] is the LRU victim.
    d.hotLearn(foreign[0], 3, true);
    d.hotLearn(foreign[2], 1, true);
    EXPECT_EQ(d.hotFiles(), 2u);
    EXPECT_EQ(d.lookup(foreign[1], m),
              ShardedCacheDirectory::Answer::Unknown);
    EXPECT_EQ(d.lookup(foreign[0], m), ShardedCacheDirectory::Answer::Hot);
    EXPECT_TRUE(m.test(1));
    EXPECT_TRUE(m.test(3));
}

TEST(ShardedCacheDirectory, EntriesBoundedByShardPlusHotSet)
{
    // The memory story: each of N nodes holds only ~F/S of the F files
    // plus a bounded hot set, vs F entries replicated everywhere.
    const int nodes = 16, shards = 16;
    const press::storage::FileId files = 4096;
    ShardedCacheDirectory d(nodes, 0, shards, 8);
    CacheDirectory repl(nodes);
    for (press::storage::FileId f = 0; f < files; ++f) {
        repl.update(1, f, true);
        if (d.owns(f))
            d.update(1, f, true);
        else
            d.hotLearn(f, 1, true);
    }
    EXPECT_EQ(repl.knownFiles(), files);
    // splitmix64 spreads files near-uniformly over shards.
    EXPECT_LT(d.entries(), files / shards + 8 + files / (shards * 4));
    EXPECT_GE(d.ownedFiles(), files / (shards * 2));
}
