/**
 * @file
 * Full-cluster tests of the open-loop traffic engine: the shaped
 * scenarios must stay byte-identical across reruns, worker-thread
 * counts, and the tick-race hunter's equal-tick permutations; the
 * flash-crowd scenario must cross the T = 80 overload-replication
 * pivot during the spike and nowhere before it; keep-alive sessions
 * must skip exactly the connection-setup share of mu_p; the dynamic
 * request class must bypass the storage path; and the client-side
 * in-flight cap must shed load without losing accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "check/tick_race.hpp"
#include "core/cluster.hpp"
#include "core/press_server.hpp"
#include "obs/trace_io.hpp"
#include "traffic/traffic_model.hpp"
#include "workload/trace_gen.hpp"

using namespace press;
using namespace press::core;

namespace {

workload::Trace
smallTrace(std::uint64_t requests = 30000, std::size_t files = 800)
{
    workload::TraceSpec spec;
    spec.name = "small";
    spec.numFiles = files;
    spec.numRequests = requests;
    spec.avgFileSize = 12000;
    spec.avgRequestSize = 9000;
    spec.seed = 5;
    return workload::generateTrace(spec);
}

PressConfig
openConfig()
{
    PressConfig c;
    c.nodes = 4;
    c.protocol = Protocol::ViaClan;
    c.version = Version::V5;
    c.cacheBytes = 8 * util::MB;
    c.clientsPerNode = 44;
    c.warmupFraction = 0.3;
    c.clientMode = PressConfig::ClientMode::OpenLoop;
    return c;
}

/** Everything a shaped open-loop run can show the outside world. */
std::string
trafficFingerprint(PressConfig config, const workload::Trace &trace,
                   std::uint64_t max_requests)
{
    config.trace = true;
    PressCluster cluster(config, trace);
    auto r = cluster.run(max_requests);

    std::ostringstream fp;
    fp.precision(17);
    fp << "throughput " << r.throughput << "\n";
    fp << "p50_ms " << r.p50LatencyMs << "\n";
    fp << "p99_ms " << r.p99LatencyMs << "\n";
    fp << "p999_ms " << r.p999LatencyMs << "\n";
    fp << "measured " << r.requestsMeasured << "\n";
    fp << "offered " << r.offeredRequests << "\n";
    fp << "offered_rate " << r.offeredRate << "\n";
    fp << "dropped " << r.droppedRequests << "\n";
    fp << "inflight " << r.inFlightPeak << " " << r.inFlightEnd << "\n";
    fp << "sessions " << r.sessionsClosed << "\n";
    fp << "keepalive " << r.keepAliveRequests << "\n";
    fp << "dynamic " << r.dynamicRequests << "\n";
    fp << "overload " << r.overloadServes << "\n";
    fp << "events " << cluster.simulator().eventsExecuted() << "\n";
    fp << "now " << cluster.simulator().now() << "\n";
    cluster.dumpStats(fp);
    if (r.trace)
        obs::writeTrace(fp, *r.trace);
    return fp.str();
}

/** Swallows intra-cluster traffic; single-node rigs never send any. */
class NullComm : public ClusterComm
{
  public:
    void sendLoad(int, const LoadMsg &) override {}
    void sendForward(int, const ForwardMsg &) override {}
    void sendCaching(int, const CachingMsg &) override {}
    void sendFile(int, const FileMsg &) override {}
};

} // namespace

TEST(TrafficCluster, FlashRunIsByteIdenticalAcrossReruns)
{
    auto trace = smallTrace(20000);
    PressConfig config = openConfig();
    config.traffic = traffic::flashScenario(1800);
    std::string a = trafficFingerprint(config, trace, 5000);
    std::string b = trafficFingerprint(config, trace, 5000);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(TrafficCluster, FlashRunIsByteIdenticalAcrossThreadCounts)
{
    auto trace = smallTrace(20000);
    PressConfig config = openConfig();
    config.traffic = traffic::flashScenario(1800);
    config.threads = 1;
    std::string base = trafficFingerprint(config, trace, 5000);
    ASSERT_FALSE(base.empty());
    config.threads = 4;
    EXPECT_EQ(base, trafficFingerprint(config, trace, 5000));
}

TEST(TrafficCluster, KeepAliveSurvivesTickRacePermutations)
{
    // Sessions are the widest new surface: think-timer wakeups, span
    // begin/end bookkeeping, and handshake bytes all ride cross-domain
    // messages that can collide at equal ticks.
    auto trace = smallTrace(20000);
    PressConfig base = openConfig();
    base.traffic = traffic::keepAliveScenario(1000);

    check::TickRaceHunter::Options opts;
    opts.seeds = 4;
    check::TickRaceHunter hunter(opts);
    hunter.addScenario(
        "traffic/keepalive",
        [&base, &trace](sim::TieBreak policy, std::uint64_t seed) {
            PressConfig config = base;
            config.tieBreak = policy;
            config.tieBreakSeed = seed;
            config.trace = true;
            config.viaCheck = ViaCheck::Off;
            PressCluster cluster(config, trace);
            auto r = cluster.run(1500);

            check::RunFingerprint fp;
            fp.eventsExecuted = cluster.simulator().eventsExecuted();
            fp.finalTick = cluster.simulator().now();
            std::uint64_t h = 0;
            h = check::hashCombine(
                h, std::bit_cast<std::uint64_t>(r.throughput));
            h = check::hashCombine(
                h, std::bit_cast<std::uint64_t>(r.p99LatencyMs));
            h = check::hashCombine(h, r.requestsMeasured);
            h = check::hashCombine(h, r.offeredRequests);
            h = check::hashCombine(h, r.sessionsClosed);
            h = check::hashCombine(h, r.keepAliveRequests);
            fp.resultsHash = h;
            std::ostringstream headline;
            headline.precision(17);
            headline << "tput " << r.throughput << " sessions "
                     << r.sessionsClosed << " keepalive "
                     << r.keepAliveRequests;
            fp.headline = headline.str();
            fp.trace = r.trace;
            return fp;
        });
    EXPECT_TRUE(hunter.run()) << hunter.report();
}

TEST(TrafficCluster, KeepAliveSkipsConnectionSetupExactly)
{
    // Two single-node rigs serve the same cold file; the only cost
    // difference is the accept/teardown share of mu_p, so the latency
    // gap must equal ServiceCosts::connSetup to the tick.
    sim::Tick latency[2];
    for (int reused = 0; reused < 2; ++reused) {
        PressConfig config;
        config.nodes = 1;
        config.cacheBytes = util::MB;
        sim::Simulator sim;
        osnode::Node node(sim, 0);
        storage::FileSet files({10000, 20000, 30000});
        NullComm comm;
        PressServer server(sim, config, 0, node, files, comm, 99);
        RequestOptions opts;
        opts.keepAlive = reused == 1;
        server.handleClientRequest(1, [](std::uint64_t) {}, opts);
        sim.run();
        ASSERT_EQ(server.stats().latency.count(), 1u);
        latency[reused] =
            static_cast<sim::Tick>(server.stats().latency.sum());
    }
    PressConfig config;
    EXPECT_EQ(latency[0] - latency[1], config.calibration.service.connSetup);
}

TEST(TrafficCluster, SessionsConserveRequestAccounting)
{
    auto trace = smallTrace(20000);
    PressConfig config = openConfig();
    config.warmupFraction = 0; // no closed-loop stragglers: exact counts
    config.traffic = traffic::keepAliveScenario(1200);
    PressCluster cluster(config, trace);
    auto r = cluster.run(4000);

    EXPECT_GT(r.sessionsClosed, 0u);
    EXPECT_GT(r.keepAliveRequests, 0u);
    // Unbounded in-flight: every arrival is eventually answered.
    EXPECT_EQ(r.droppedRequests, 0u);
    EXPECT_EQ(r.requestsMeasured, r.offeredRequests);
    EXPECT_EQ(r.inFlightEnd, 0u);
    EXPECT_TRUE(cluster.simulator().idle());

    // Each session's opening request pays the handshake; every later
    // request in it rides the kept-alive connection.
    std::uint64_t opened = 0, closed = 0;
    for (int i = 0; i < config.nodes; ++i) {
        opened += cluster.server(i).stats().sessionsOpened;
        closed += cluster.server(i).stats().sessionsClosed;
    }
    EXPECT_GT(opened, 0u);
    EXPECT_EQ(opened + r.keepAliveRequests, r.offeredRequests);
    // Sessions cut short by the end of the feed never close.
    EXPECT_LE(r.sessionsClosed, opened);
    EXPECT_EQ(r.sessionsClosed, closed);
}

TEST(TrafficCluster, FlashCrowdCrossesTheOverloadPivotMidRun)
{
    auto trace = smallTrace(20000);

    // The 4-node V5 knee sits near 1540 req/s: a base of 800 keeps the
    // pre-spike phase healthy while the 3x flash peak (2400 req/s, 85%
    // of it on 8 files) sails past it.
    // Control: the same average load without the spike or the hot set
    // stays comfortably under the T = 80 pivot.
    PressConfig steady = openConfig();
    steady.traffic = traffic::steadyScenario(800);
    auto rs = PressCluster(steady, trace).run(5000);

    PressConfig flash = steady;
    flash.traffic = traffic::flashScenario(800);
    flash.trace = true;
    flash.traceEventsPerNode = 1u << 17;
    PressCluster cluster(flash, trace);
    auto rf = cluster.run(5000);

    // The spike triggers overload replication; steady traffic does not.
    EXPECT_GT(rf.overloadServes, 20u);
    EXPECT_GT(rf.overloadServes, 10 * std::max<std::uint64_t>(
                                          rs.overloadServes, 1));

    // Timing: the pivot is crossed inside the spike window and never
    // before the crowd arrives (1500 ms after the warm-up barrier, per
    // flashScenario).
    ASSERT_TRUE(rf.trace != nullptr);
    const sim::Tick spike_start = rf.measureStartTick + 1500 * util::MS;
    const sim::Tick spike_end = spike_start + (150 + 600 + 300) * util::MS;
    std::uint64_t before = 0, during = 0;
    for (const auto &ring : rf.trace->events)
        for (const auto &ev : ring) {
            if (ev.code != obs::Ev::ReqDispatch ||
                ev.arg != static_cast<std::uint64_t>(
                              obs::DispatchDecision::OverloadLocal))
                continue;
            if (ev.tick < spike_start)
                ++before;
            else if (ev.tick <= spike_end)
                ++during;
        }
    EXPECT_EQ(before, 0u);
    EXPECT_GT(during, 0u);
}

TEST(TrafficCluster, DynamicClassBypassesTheStoragePath)
{
    auto trace = smallTrace(20000);
    PressConfig config = openConfig();
    config.warmupFraction = 0; // no closed-loop warm-up disk traffic
    config.traffic = traffic::steadyScenario(2000);
    auto rs = PressCluster(config, trace).run(5000);
    EXPECT_GT(rs.diskReads, 0u);
    EXPECT_EQ(rs.dynamicRequests, 0u);

    config.traffic = traffic::dynamicMixScenario(2000);
    config.traffic.dynamicFraction = 1.0; // the pure-CPU extreme
    auto rd = PressCluster(config, trace).run(5000);
    EXPECT_EQ(rd.dynamicRequests, rd.offeredRequests);
    EXPECT_EQ(rd.requestsMeasured, rd.offeredRequests);
    // Generated pages never touch the cache or the disk.
    EXPECT_EQ(rd.diskReads, 0u);
    EXPECT_EQ(rd.cacheInsertions, 0u);
}

TEST(TrafficCluster, InFlightCapShedsLoadWithoutLosingAccounting)
{
    auto trace = smallTrace(20000);
    PressConfig config = openConfig();
    config.warmupFraction = 0;
    // Offer ~3x the 4-node capacity behind a shallow client-side cap:
    // the engine must shed, and every arrival must be accounted as
    // either a measured reply or a counted drop.
    config.traffic = traffic::steadyScenario(9000);
    config.traffic.maxInFlight = 64;
    PressCluster cluster(config, trace);
    auto r = cluster.run(6000);

    EXPECT_GT(r.droppedRequests, 0u);
    EXPECT_LE(r.inFlightPeak, 64u);
    EXPECT_EQ(r.requestsMeasured + r.droppedRequests, r.offeredRequests);
    EXPECT_EQ(r.inFlightEnd, 0u);
    EXPECT_TRUE(cluster.simulator().idle());
}
