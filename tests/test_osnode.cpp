/**
 * @file
 * Tests for the node model: disk timing and CPU categories.
 */

#include <gtest/gtest.h>

#include "osnode/node.hpp"
#include "util/units.hpp"

using namespace press;
using namespace press::util;
using osnode::Disk;
using osnode::DiskParams;
using osnode::Node;

TEST(Disk, ReadTimeMatchesTable5)
{
    // mu_d = (0.0188 + S/3000)^-1 with S in KB: 16 KB -> 24.13 ms.
    sim::Simulator sim;
    Disk d(sim, "disk");
    sim::Tick t = d.readTime(16000);
    EXPECT_NEAR(static_cast<double>(t) / 1e6, 24.13, 0.05);
}

TEST(Disk, ReadsQueueFifo)
{
    sim::Simulator sim;
    DiskParams p;
    p.positioning = 10 * MS;
    p.bandwidth = 1 * MB;
    Disk d(sim, "disk", p);
    std::vector<sim::Tick> done;
    d.read(1000, [&] { done.push_back(sim.now()); }); // 10ms + 1ms
    d.read(2000, [&] { done.push_back(sim.now()); }); // + 10ms + 2ms
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 11 * MS);
    EXPECT_EQ(done[1], 23 * MS);
    EXPECT_EQ(d.reads(), 2u);
    EXPECT_EQ(d.busyTime(), 23 * MS);
}

TEST(Disk, ResetStatsClears)
{
    sim::Simulator sim;
    Disk d(sim, "disk");
    d.read(1000, {});
    sim.run();
    EXPECT_GT(d.busyTime(), 0);
    d.resetStats();
    EXPECT_EQ(d.busyTime(), 0);
}

TEST(Node, OwnsCpuAndDisk)
{
    sim::Simulator sim;
    Node n(sim, 3);
    EXPECT_EQ(n.id(), 3);
    n.cpu().submit(100, osnode::CatService);
    n.disk().read(100, {});
    sim.run();
    EXPECT_EQ(n.cpu().busyTime(osnode::CatService), 100);
    EXPECT_GT(n.disk().busyTime(), 0);
}

TEST(Node, CategoryNames)
{
    EXPECT_STREQ(osnode::cpuCategoryName(osnode::CatService), "service");
    EXPECT_STREQ(osnode::cpuCategoryName(osnode::CatIntraComm),
                 "intra-comm");
    EXPECT_STREQ(osnode::cpuCategoryName(osnode::CatClientComm),
                 "client-comm");
    EXPECT_STREQ(osnode::cpuCategoryName(999), "unknown");
}

TEST(Node, CpuAndDiskOverlap)
{
    // The disk helper threads keep the main thread running: CPU work
    // and a disk read submitted together must overlap, not serialize.
    sim::Simulator sim;
    Node n(sim, 0);
    sim::Tick cpu_done = -1, disk_done = -1;
    n.cpu().submit(30 * MS, 0, [&] { cpu_done = sim.now(); });
    n.disk().read(30000, [&] { disk_done = sim.now(); });
    sim.run();
    EXPECT_EQ(cpu_done, 30 * MS);
    EXPECT_LT(disk_done, 60 * MS); // would be ~59 ms if serialized
}
