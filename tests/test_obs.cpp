/**
 * @file
 * Tests for the observability subsystem (src/obs): ring semantics,
 * metrics rollups, the span-vs-counter exactness invariant, export
 * determinism, the JSON validator, and the .ptrace round trip.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/summary.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_ring.hpp"
#include "obs/tracer.hpp"
#include "sim/resource.hpp"
#include "workload/trace_gen.hpp"

using namespace press;

namespace {

obs::TraceEvent
ev(sim::Tick tick, std::uint64_t arg = 0)
{
    obs::TraceEvent e;
    e.tick = tick;
    e.arg = arg;
    e.code = obs::Ev::CommSend;
    e.phase = obs::Phase::Instant;
    return e;
}

/** A small traced VIA cluster run (the workhorse for the export and
 *  cross-check tests). */
core::ClusterResults
tracedRun(std::uint32_t ring_capacity = 4096)
{
    workload::TraceSpec spec = workload::clarknetSpec();
    spec.numRequests = 6000;
    spec.numFiles = 800;
    static workload::Trace trace = workload::generateTrace(spec);

    core::PressConfig config;
    config.nodes = 4;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V5;
    config.trace = true;
    config.traceEventsPerNode = ring_capacity;

    core::PressCluster cluster(config, trace);
    return cluster.run();
}

} // namespace

TEST(TraceEvent, Is24BytesPacked)
{
    EXPECT_EQ(sizeof(obs::TraceEvent), 24u);
}

TEST(TraceEvent, PackKindBytesRoundTrips)
{
    std::uint64_t arg = obs::packKindBytes(7, 123456789);
    EXPECT_EQ(obs::unpackKind(arg), 7);
    EXPECT_EQ(obs::unpackBytes(arg), 123456789u);
}

TEST(TraceEvent, RequestIdEncodesNodeAndTag)
{
    std::uint32_t id = obs::requestId(3, 42);
    EXPECT_NE(id, 0u);          // 0 is reserved for "no request"
    EXPECT_EQ(id >> 24, 4u);    // node + 1
    EXPECT_EQ(id & 0xffffffu, 42u);
    EXPECT_NE(obs::requestId(0, 0), obs::requestId(1, 0));
}

TEST(TraceRing, RetainsEverythingBelowCapacity)
{
    obs::TraceRing ring(8);
    for (int i = 0; i < 5; ++i)
        ring.push(ev(i));
    EXPECT_EQ(ring.emitted(), 5u);
    EXPECT_EQ(ring.size(), 5u);
    EXPECT_EQ(ring.dropped(), 0u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(ring.at(i).tick, static_cast<sim::Tick>(i));
}

TEST(TraceRing, WrapsAroundAtCapacity)
{
    obs::TraceRing ring(8);
    for (int i = 0; i < 20; ++i)
        ring.push(ev(i));
    EXPECT_EQ(ring.emitted(), 20u);
    EXPECT_EQ(ring.size(), 8u);     // capacity retained
    EXPECT_EQ(ring.dropped(), 12u); // oldest overwritten
    // at() walks oldest-first over the newest window: ticks 12..19.
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(ring.at(i).tick, static_cast<sim::Tick>(12 + i));
    std::vector<obs::TraceEvent> snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    EXPECT_EQ(snap.front().tick, 12);
    EXPECT_EQ(snap.back().tick, 19);
}

TEST(TraceRing, ExactlyAtCapacityDropsNothing)
{
    obs::TraceRing ring(8);
    for (int i = 0; i < 8; ++i)
        ring.push(ev(i));
    EXPECT_EQ(ring.size(), 8u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.at(0).tick, 0);
    EXPECT_EQ(ring.at(7).tick, 7);
    ring.push(ev(8)); // first overwrite
    EXPECT_EQ(ring.dropped(), 1u);
    EXPECT_EQ(ring.at(0).tick, 1);
    EXPECT_EQ(ring.at(7).tick, 8);
}

TEST(TraceRing, ClearKeepsCapacity)
{
    obs::TraceRing ring(4);
    for (int i = 0; i < 10; ++i)
        ring.push(ev(i));
    ring.clear();
    EXPECT_EQ(ring.emitted(), 0u);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.capacity(), 4u);
    ring.push(ev(99));
    EXPECT_EQ(ring.at(0).tick, 99);
}

TEST(Metrics, RegisterOrFindReturnsSameSlot)
{
    obs::MetricsRegistry reg(2);
    obs::Counter &a = reg.counter("x", 0);
    obs::Counter &b = reg.counter("x", 0);
    EXPECT_EQ(&a, &b);
    obs::Counter &other_node = reg.counter("x", 1);
    EXPECT_NE(&a, &other_node);
}

TEST(Metrics, SnapshotRollsUpDeterministically)
{
    obs::MetricsRegistry reg(2);
    reg.counter("b.count", 0).add(3);
    reg.counter("b.count", 1).add(4);
    reg.gauge("a.depth", 0).set(5);
    reg.gauge("a.depth", 0).set(2); // max stays 5
    reg.gauge("a.depth", 1).set(9);
    reg.histogram("c.lat", 1).add(10);

    std::vector<obs::MetricSample> snap = reg.snapshot();
    // Sorted by name then node, rollup row (node -1) per name:
    // b.count before a.depth? No — counters and gauges both sort by
    // name within their kind; the registry enumerates counters first.
    ASSERT_EQ(snap.size(), 9u);
    EXPECT_EQ(snap[0].name, "b.count");
    EXPECT_EQ(snap[0].node, 0);
    EXPECT_EQ(snap[0].value, 3u);
    EXPECT_EQ(snap[2].node, -1); // rollup
    EXPECT_EQ(snap[2].value, 7u); // counters sum
    EXPECT_EQ(snap[3].name, "a.depth");
    EXPECT_EQ(snap[5].node, -1);
    EXPECT_EQ(snap[5].value, 9u); // gauges take the max high-water
    EXPECT_EQ(snap[6].name, "c.lat");
    EXPECT_EQ(snap[8].value, 1u); // histogram rollup = total count

    reg.reset();
    for (const auto &s : reg.snapshot())
        EXPECT_EQ(s.value, 0u);
}

TEST(Tracer, ProbeSpanBusyMatchesResourceCounters)
{
    sim::Simulator sim;
    sim::FifoResource cpu(sim, "cpu");
    obs::Tracer tracer(sim, 1, 64, {"service", "client-comm",
                                    "intra-comm", "other"});
    obs::ResourceProbe probe(tracer, 0, obs::ResourceProbe::Kind::Cpu);
    cpu.setListener(&probe);

    cpu.submit(10, 0);
    cpu.submit(25, 2);
    cpu.submit(7, 2);
    cpu.submit(3, 1);
    sim.run();

    // The invariant behind the Figure-1 cross-check: span-derived busy
    // time equals the resource's own category counters exactly.
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(tracer.spanBusy(0, c), cpu.busyTime(c))
            << "category " << c;
    EXPECT_EQ(tracer.spanBusy(0, 2), 32);

    // The ring saw Begin/End pairs plus depth counters.
    EXPECT_GT(tracer.ring(0).emitted(), 0u);
}

TEST(Tracer, SnapshotCarriesRingsAndAggregates)
{
    sim::Simulator sim;
    obs::Tracer tracer(sim, 2, 16, {"a", "b"});
    tracer.instant(0, obs::Ev::CommSend, 0, obs::packKindBytes(1, 100));
    tracer.instant(1, obs::Ev::CommRecv, 7, obs::packKindBytes(1, 100));
    tracer.addCpuSpan(0, 1, 500);
    tracer.metrics().counter("m", 0).add(2);

    obs::TraceData data = tracer.snapshot();
    EXPECT_EQ(data.nodes, 2u);
    ASSERT_EQ(data.events.size(), 2u);
    EXPECT_EQ(data.events[0].size(), 1u);
    EXPECT_EQ(data.events[1].size(), 1u);
    EXPECT_EQ(data.events[1][0].req, 7u);
    EXPECT_EQ(data.spanBusy[0][1], 500);
    EXPECT_EQ(data.counterBusy[0][1], 0); // caller fills this in
    ASSERT_EQ(data.categories.size(), 2u);
    EXPECT_EQ(data.categories[1], "b");
    EXPECT_FALSE(data.metrics.empty());
}

TEST(ValidateJson, AcceptsWellFormedDocuments)
{
    for (const char *good :
         {"{}", "[]", "null", "true", "-1.5e3",
          R"({"a":[1,2,{"b":null}],"c":"x\nyA"})",
          R"([{"ts":0.001,"ph":"B"},{"ts":1,"ph":"E"}])"}) {
        std::string error;
        EXPECT_TRUE(obs::validateJson(good, &error))
            << good << ": " << error;
    }
}

TEST(ValidateJson, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru",
          "\"unterminated", "{} garbage", "[1] [2]", "+1",
          "{\"a\":1,}", "nan"}) {
        std::string error;
        EXPECT_FALSE(obs::validateJson(bad, &error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(TracedCluster, CrossCheckPassesAndExportsValidate)
{
    core::ClusterResults r = tracedRun();
    ASSERT_TRUE(r.trace);
    const obs::TraceData &data = *r.trace;
    EXPECT_EQ(data.nodes, 4u);

    std::ostringstream diag;
    EXPECT_TRUE(obs::crossCheck(data, &diag)) << diag.str();

    std::ostringstream json;
    obs::writeChromeTrace(json, data);
    std::string error;
    EXPECT_TRUE(obs::validateJson(json.str(), &error)) << error;

    std::ostringstream summary;
    obs::writeSummary(summary, data);
    EXPECT_NE(summary.str().find("intra-comm"), std::string::npos);
}

TEST(TracedCluster, CrossCheckDetectsTampering)
{
    core::ClusterResults r = tracedRun();
    ASSERT_TRUE(r.trace);
    obs::TraceData data = *r.trace;
    data.counterBusy[2][1] += 1; // one lost nanosecond must be caught
    std::ostringstream diag;
    EXPECT_FALSE(obs::crossCheck(data, &diag));
    EXPECT_NE(diag.str().find("node"), std::string::npos);
}

TEST(TracedCluster, RerunsAreByteIdentical)
{
    core::ClusterResults a = tracedRun();
    core::ClusterResults b = tracedRun();
    ASSERT_TRUE(a.trace && b.trace);

    std::ostringstream ja, jb;
    obs::writeChromeTrace(ja, *a.trace);
    obs::writeChromeTrace(jb, *b.trace);
    EXPECT_EQ(ja.str(), jb.str());

    std::ostringstream pa, pb;
    obs::writeTrace(pa, *a.trace);
    obs::writeTrace(pb, *b.trace);
    EXPECT_EQ(pa.str(), pb.str());
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    core::ClusterResults r = tracedRun(512);
    ASSERT_TRUE(r.trace);
    const obs::TraceData &data = *r.trace;

    std::ostringstream out;
    obs::writeTrace(out, data);
    std::string bytes = out.str();

    obs::TraceData back;
    std::istringstream in(bytes);
    std::string error;
    ASSERT_TRUE(obs::readTrace(in, back, &error)) << error;

    EXPECT_EQ(back.nodes, data.nodes);
    EXPECT_EQ(back.categories, data.categories);
    EXPECT_EQ(back.emitted, data.emitted);
    EXPECT_EQ(back.spanBusy, data.spanBusy);
    EXPECT_EQ(back.counterBusy, data.counterBusy);
    ASSERT_EQ(back.events.size(), data.events.size());
    for (std::size_t n = 0; n < data.events.size(); ++n) {
        ASSERT_EQ(back.events[n].size(), data.events[n].size());
        for (std::size_t i = 0; i < data.events[n].size(); ++i) {
            EXPECT_EQ(back.events[n][i].tick, data.events[n][i].tick);
            EXPECT_EQ(back.events[n][i].arg, data.events[n][i].arg);
            EXPECT_EQ(back.events[n][i].req, data.events[n][i].req);
            EXPECT_EQ(back.events[n][i].code, data.events[n][i].code);
        }
    }
    ASSERT_EQ(back.metrics.size(), data.metrics.size());
    for (std::size_t i = 0; i < data.metrics.size(); ++i) {
        EXPECT_EQ(back.metrics[i].name, data.metrics[i].name);
        EXPECT_EQ(back.metrics[i].node, data.metrics[i].node);
        EXPECT_EQ(back.metrics[i].value, data.metrics[i].value);
    }

    // Re-serializing the parsed data reproduces the bytes exactly.
    std::ostringstream again;
    obs::writeTrace(again, back);
    EXPECT_EQ(again.str(), bytes);
}

TEST(TraceIo, RejectsCorruptStreams)
{
    std::string error;
    obs::TraceData data;
    {
        std::istringstream empty("");
        EXPECT_FALSE(obs::readTrace(empty, data, &error));
    }
    {
        std::istringstream junk("not a ptrace file at all");
        EXPECT_FALSE(obs::readTrace(junk, data, &error));
        EXPECT_FALSE(error.empty());
    }
    {
        // Valid magic, truncated body.
        std::string bytes = "PTRC";
        std::istringstream truncated(bytes);
        EXPECT_FALSE(obs::readTrace(truncated, data, &error));
    }
}

TEST(TracingOff, NoTracerAndNoTraceData)
{
    workload::TraceSpec spec = workload::clarknetSpec();
    spec.numRequests = 2000;
    spec.numFiles = 400;
    workload::Trace trace = workload::generateTrace(spec);

    core::PressConfig config;
    config.nodes = 2;
    config.trace = false;
    core::PressCluster cluster(config, trace);
    EXPECT_EQ(cluster.tracer(), nullptr);
    core::ClusterResults r = cluster.run();
    EXPECT_FALSE(r.trace);
    EXPECT_GT(r.throughput, 0.0);
}
