/**
 * @file
 * Tests for scalable dissemination (gossip rounds, multicast trees) and
 * the sharded cache directory: convergence bounds, message-count
 * exactness, a sharded-vs-replicated end-state oracle, and byte
 * identity under the parallel kernel.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/dissemination.hpp"
#include "obs/trace_io.hpp"
#include "workload/trace_gen.hpp"

using namespace press;
using core::DisseminationEngine;
using core::Rumor;

// ---------------------------------------------------------------------
// Engine primitives
// ---------------------------------------------------------------------

TEST(Dissemination, PeerSamplesAreDeterministicAndValid)
{
    std::vector<int> a, b;
    for (std::uint64_t round = 1; round <= 50; ++round) {
        DisseminationEngine::samplePeers(42, round, 3, 64, 4, a);
        DisseminationEngine::samplePeers(42, round, 3, 64, 4, b);
        EXPECT_EQ(a, b) << "sample must be a pure function of its inputs";
        EXPECT_EQ(a.size(), 4u);
        std::set<int> distinct(a.begin(), a.end());
        EXPECT_EQ(distinct.size(), 4u);
        EXPECT_EQ(distinct.count(3), 0u) << "never samples self";
        for (int p : a) {
            EXPECT_GE(p, 0);
            EXPECT_LT(p, 64);
        }
    }
    // Small clusters cap the sample at nodes - 1.
    DisseminationEngine::samplePeers(42, 1, 0, 3, 4, a);
    EXPECT_EQ(a.size(), 2u);
    DisseminationEngine::samplePeers(42, 1, 0, 1, 4, a);
    EXPECT_TRUE(a.empty());
}

TEST(Dissemination, PeerSamplesVaryAcrossRoundsAndNodes)
{
    // Not a randomness test, just a degeneracy guard: the union of a
    // node's samples over a handful of rounds should cover much more
    // than one fanout's worth of peers.
    std::set<int> seen;
    std::vector<int> s;
    for (std::uint64_t round = 1; round <= 16; ++round) {
        DisseminationEngine::samplePeers(7, round, 0, 64, 4, s);
        seen.insert(s.begin(), s.end());
    }
    EXPECT_GT(seen.size(), 20u);
}

TEST(Dissemination, TreeEdgesCoverEveryNodeExactlyOnce)
{
    // A wave rooted at r sends exactly one message per (parent, child)
    // edge; the edge set must be a spanning tree: every non-root node
    // is someone's child exactly once. This is the N-1 message-count
    // exactness the bench's analytic column relies on.
    std::vector<int> children;
    for (int nodes : {2, 5, 16, 64, 256}) {
        for (int fanout : {1, 2, 4, 8}) {
            for (int root : {0, 1, nodes / 2, nodes - 1}) {
                std::vector<int> childCount(nodes, 0);
                int edges = 0;
                for (int self = 0; self < nodes; ++self) {
                    DisseminationEngine::treeChildren(self, root, fanout,
                                                     nodes, children);
                    for (int c : children) {
                        ASSERT_GE(c, 0);
                        ASSERT_LT(c, nodes);
                        ++childCount[c];
                        ++edges;
                    }
                }
                EXPECT_EQ(edges, nodes - 1)
                    << "nodes=" << nodes << " fanout=" << fanout
                    << " root=" << root;
                EXPECT_EQ(childCount[root], 0);
                for (int n = 0; n < nodes; ++n) {
                    if (n == root)
                        continue;
                    EXPECT_EQ(childCount[n], 1) << "node " << n;
                }
            }
        }
    }
}

TEST(Dissemination, TreeDepthIsLogarithmic)
{
    EXPECT_EQ(DisseminationEngine::treeDepth(1, 4), 0);
    EXPECT_EQ(DisseminationEngine::treeDepth(2, 4), 1);
    EXPECT_EQ(DisseminationEngine::treeDepth(256, 4), 4);
    EXPECT_LE(DisseminationEngine::treeDepth(256, 2), 8);
}

TEST(Dissemination, AcceptFiltersStaleAndDuplicate)
{
    DisseminationEngine::Params p;
    p.nodes = 8;
    p.self = 0;
    DisseminationEngine e(p);

    auto loadRumor = [](int origin, std::uint32_t seq, int load) {
        Rumor r;
        r.isLoad = true;
        r.origin = origin;
        r.seq = seq;
        r.load = load;
        r.hops = 3;
        return r;
    };
    // Load: latest-value semantics — only strictly newer seqs apply.
    EXPECT_TRUE(e.accept(loadRumor(3, 5, 10)));
    EXPECT_FALSE(e.accept(loadRumor(3, 5, 10))) << "duplicate";
    EXPECT_FALSE(e.accept(loadRumor(3, 4, 7))) << "stale reordering";
    EXPECT_TRUE(e.accept(loadRumor(3, 6, 11)));
    EXPECT_FALSE(e.accept(loadRumor(0, 99, 1))) << "own origin";

    auto cachingRumor = [](int origin, std::uint32_t seq) {
        Rumor r;
        r.isLoad = false;
        r.origin = origin;
        r.seq = seq;
        r.file = 17;
        r.cached = true;
        r.hops = 3;
        return r;
    };
    // Caching: event semantics — reordered events all apply once.
    EXPECT_TRUE(e.accept(cachingRumor(2, 3)));
    EXPECT_TRUE(e.accept(cachingRumor(2, 1))) << "reordered, not stale";
    EXPECT_TRUE(e.accept(cachingRumor(2, 2)));
    EXPECT_FALSE(e.accept(cachingRumor(2, 3))) << "duplicate";
    EXPECT_FALSE(e.accept(cachingRumor(2, 1))) << "duplicate";
    EXPECT_TRUE(e.accept(cachingRumor(2, 4)));
}

// ---------------------------------------------------------------------
// Gossip convergence
// ---------------------------------------------------------------------

namespace {

/** Lockstep mesh of engines: one rumor from node 0, synchronous round
 *  delivery. Returns rounds until every node accepted it (or -1). */
int
roundsToConverge(int nodes, int fanout, std::uint64_t seed)
{
    DisseminationEngine::Params base;
    base.nodes = nodes;
    base.fanout = fanout;
    base.seed = seed;

    std::vector<std::unique_ptr<DisseminationEngine>> engines;
    for (int i = 0; i < nodes; ++i) {
        auto p = base;
        p.self = i;
        engines.push_back(std::make_unique<DisseminationEngine>(p));
        if (i != 0)
            engines.back()->makeOwnLoad(0, 0); // quiesce: announced once
    }

    std::vector<bool> infected(static_cast<std::size_t>(nodes), false);
    infected[0] = true; // engine 0's own load is dirty; rounds spread it
    int covered = 1;

    int ttl = DisseminationEngine::gossipTtl(nodes, fanout);
    for (int round = 1; round <= ttl; ++round) {
        std::vector<std::pair<int, Rumor>> mail;
        for (int i = 0; i < nodes; ++i)
            engines[i]->runRound(i == 0 ? 1 : 0,
                                 [&](int dst, const Rumor &r) {
                                     mail.emplace_back(dst, r);
                                 });
        for (const auto &[dst, r] : mail) {
            if (!engines[dst]->accept(r))
                continue;
            engines[dst]->enqueueRelay(r);
            if (r.origin == 0 &&
                !infected[static_cast<std::size_t>(dst)]) {
                infected[static_cast<std::size_t>(dst)] = true;
                ++covered;
            }
        }
        if (covered == nodes)
            return round;
    }
    return -1;
}

} // namespace

TEST(Dissemination, GossipConvergesWithinTtlRounds)
{
    // The hop budget gossipTtl = ceil(log_k N) + slack must suffice for
    // one rumor to infect the whole cluster under lockstep rounds.
    for (int nodes : {16, 64, 256}) {
        for (std::uint64_t seed : {42ull, 7ull, 1234ull}) {
            int rounds = roundsToConverge(nodes, 4, seed);
            EXPECT_NE(rounds, -1)
                << "no convergence: nodes=" << nodes << " seed=" << seed;
            EXPECT_LE(rounds, DisseminationEngine::gossipTtl(nodes, 4));
        }
    }
}

// ---------------------------------------------------------------------
// Full-cluster checks
// ---------------------------------------------------------------------

namespace {

workload::Trace
smallTrace()
{
    auto spec = workload::clarknetSpec();
    spec.numRequests = 6000;
    return workload::generateTrace(spec);
}

std::string
runFingerprint(core::PressConfig config, const workload::Trace &trace,
               std::uint64_t requests = 3000)
{
    config.trace = true;
    core::PressCluster cluster(config, trace);
    auto r = cluster.run(requests);

    std::ostringstream fp;
    fp.precision(17);
    fp << "throughput " << r.throughput << "\n";
    fp << "measured " << r.requestsMeasured << "\n";
    fp << "forward " << r.forwardFraction << "\n";
    fp << "disk_reads " << r.diskReads << "\n";
    fp << "gossip_rounds " << r.gossipRounds << "\n";
    fp << "rumor_sends " << r.gossipRumorSends << "\n";
    fp << "waves " << r.loadWaves << " " << r.cachingWaves << "\n";
    fp << "dir " << r.dirEntriesMaxPerNode << " " << r.dirEntriesTotal
       << " " << r.dirLookups << " " << r.dirHomeReturns << "\n";
    fp << "events " << cluster.simulator().eventsExecuted() << "\n";
    fp << "now " << cluster.simulator().now() << "\n";
    cluster.dumpStats(fp);
    cluster.writeLaneTable(fp);
    if (r.trace)
        obs::writeTrace(fp, *r.trace);
    return fp.str();
}

void
expectThreadIdentity(core::PressConfig config, const workload::Trace &trace)
{
    config.threads = 1;
    std::string base = runFingerprint(config, trace);
    ASSERT_FALSE(base.empty());
    config.threads = 4;
    EXPECT_EQ(base, runFingerprint(config, trace));
}

} // namespace

TEST(Dissemination, TreeClusterMessageCountMatchesWaves)
{
    // Every tree wave is exactly N-1 messages. The measurement-window
    // reset can split a handful of waves across the boundary, so allow
    // that much slack while pinning the per-wave linear cost.
    auto trace = smallTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V0;
    config.nodes = 8;
    config.dissemination = core::Dissemination::tree(4);
    core::PressCluster cluster(config, trace);
    auto r = cluster.run(3000);

    auto loadMsgs =
        r.comm.byKind[static_cast<int>(core::MsgKind::Load)].msgs;
    auto cachingMsgs =
        r.comm.byKind[static_cast<int>(core::MsgKind::Caching)].msgs;
    std::uint64_t perWave = static_cast<std::uint64_t>(config.nodes - 1);

    EXPECT_GT(r.loadWaves, 0u);
    EXPECT_GT(r.cachingWaves, 0u);
    std::uint64_t slack = 8 * perWave; // waves straddling the reset
    EXPECT_LE(loadMsgs, r.loadWaves * perWave + slack);
    EXPECT_GE(loadMsgs + slack, r.loadWaves * perWave);
    EXPECT_LE(cachingMsgs, r.cachingWaves * perWave + slack);
    EXPECT_GE(cachingMsgs + slack, r.cachingWaves * perWave);
}

TEST(Dissemination, GossipClusterBoundsRoundTraffic)
{
    auto trace = smallTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V0;
    config.nodes = 8;
    config.dissemination = core::Dissemination::gossip(4);
    core::PressCluster cluster(config, trace);
    auto r = cluster.run(3000);

    EXPECT_GT(r.gossipRounds, 0u);
    EXPECT_GT(r.gossipRumorSends, 0u);
    // Every slot push goes to the full fanout-k sample (8 nodes give
    // every round 4 distinct peers), so rumor-level pushes come in
    // exact multiples of the fanout.
    EXPECT_EQ(r.gossipRumorSends %
                  static_cast<std::uint64_t>(config.dissemination.fanout),
              0u);
    // On the wire a round is at most one Load plus one Caching digest
    // per sampled peer, however many rumors were due (window boundary
    // slack for rounds straddling the measurement epoch).
    auto wireMsgs =
        r.comm.byKind[static_cast<int>(core::MsgKind::Load)].msgs +
        r.comm.byKind[static_cast<int>(core::MsgKind::Caching)].msgs;
    auto digestCap = static_cast<std::uint64_t>(
        2 * config.dissemination.fanout);
    EXPECT_LE(wireMsgs, (r.gossipRounds + 2) * digestCap);
    EXPECT_LT(wireMsgs, r.gossipRumorSends)
        << "digests must beat per-rumor sends";
}

TEST(Dissemination, ShardedMatchesReplicatedServiceAndShrinksDirectory)
{
    // Same trace, same requests: the directory organisation must not
    // change *what* gets served, only where the metadata lives. With no
    // warm-up reset both runs must answer every request, and at the
    // drained end state the owners' maps must mirror the real caches.
    auto trace = smallTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::TcpFastEthernet;
    config.nodes = 8;
    config.warmupFraction = 0.0;
    config.dissemination = core::Dissemination::piggyBack();

    config.directoryMode = core::DirectoryMode::Replicated;
    core::PressCluster repl(config, trace);
    auto rRepl = repl.run(4000);

    config.directoryMode = core::DirectoryMode::Sharded;
    config.dirShards = 16;
    config.dirHotSet = 32;
    core::PressCluster shard(config, trace);
    auto rShard = shard.run(4000);

    EXPECT_EQ(rRepl.requestsMeasured, 4000u);
    EXPECT_EQ(rShard.requestsMeasured, 4000u);

    // Owner maps must exactly mirror cache contents once drained.
    auto files = static_cast<press::storage::FileId>(
        trace.files.count());
    std::uint64_t cachedPairs = 0, ownerBits = 0;
    for (int i = 0; i < config.nodes; ++i) {
        const auto *dir = shard.server(i).shardDirectory();
        ASSERT_NE(dir, nullptr);
        ownerBits += [&] {
            std::uint64_t bits = 0;
            for (press::storage::FileId f = 0; f < files; ++f) {
                core::NodeMask m;
                if (dir->lookup(f, m) ==
                    core::ShardedCacheDirectory::Answer::Owner)
                    bits += static_cast<std::uint64_t>(m.count());
            }
            return bits;
        }();
    }
    for (int i = 0; i < config.nodes; ++i)
        for (press::storage::FileId f = 0; f < files; ++f)
            if (shard.server(i).cache().contains(f)) {
                ++cachedPairs;
                const auto *owner =
                    shard.server(shard.server(i)
                                     .shardDirectory()
                                     ->ownerOf(f))
                        .shardDirectory();
                core::NodeMask m;
                ASSERT_EQ(owner->lookup(f, m),
                          core::ShardedCacheDirectory::Answer::Owner);
                EXPECT_TRUE(m.test(i))
                    << "owner lost node " << i << " file " << f;
            }
    EXPECT_EQ(ownerBits, cachedPairs)
        << "owner maps hold stale entries";

    // The memory story: one shard + bounded hot set per node.
    EXPECT_GT(rRepl.dirEntriesMaxPerNode, 0u);
    EXPECT_LE(rShard.dirEntriesMaxPerNode,
              rRepl.dirEntriesMaxPerNode / 4)
        << "sharding should shrink the per-node directory";
}

TEST(Dissemination, GossipByteIdenticalAcrossThreads)
{
    auto trace = smallTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V0;
    config.nodes = 4;
    config.dissemination = core::Dissemination::gossip(2);
    expectThreadIdentity(config, trace);
}

TEST(Dissemination, TreeShardedByteIdenticalAcrossThreads)
{
    auto trace = smallTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::TcpClan;
    config.nodes = 4;
    config.dissemination = core::Dissemination::tree(2);
    config.directoryMode = core::DirectoryMode::Sharded;
    config.dirShards = 8;
    config.dirHotSet = 64;
    expectThreadIdentity(config, trace);
}

TEST(Dissemination, SequentialRunsAreReproducible)
{
    // threads == 0 (the classic sequential kernel) is its own
    // determinism class: identical to itself run-to-run.
    auto trace = smallTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V2;
    config.nodes = 6;
    config.dissemination = core::Dissemination::gossip(3);
    config.directoryMode = core::DirectoryMode::Sharded;
    std::string a = runFingerprint(config, trace);
    std::string b = runFingerprint(config, trace);
    EXPECT_EQ(a, b);
}
