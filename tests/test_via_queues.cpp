/**
 * @file
 * Tests for completion queues and VI work-queue bookkeeping.
 */

#include <gtest/gtest.h>

#include "via/completion_queue.hpp"
#include "via/via_nic.hpp"

using namespace press;
using via::CompletionQueue;
using via::Descriptor;
using via::DescriptorPtr;

TEST(CompletionQueue, PollEmptyReturnsNothing)
{
    sim::Simulator s;
    CompletionQueue cq(s);
    EXPECT_FALSE(cq.poll().has_value());
    EXPECT_EQ(cq.pending(), 0u);
}

TEST(CompletionQueue, PushThenPollFifo)
{
    sim::Simulator s;
    CompletionQueue cq(s);
    auto d1 = std::make_shared<Descriptor>();
    auto d2 = std::make_shared<Descriptor>();
    cq.push({d1, nullptr, true});
    cq.push({d2, nullptr, false});
    auto c1 = cq.poll();
    auto c2 = cq.poll();
    ASSERT_TRUE(c1 && c2);
    EXPECT_EQ(c1->desc, d1);
    EXPECT_TRUE(c1->isRecv);
    EXPECT_EQ(c2->desc, d2);
    EXPECT_FALSE(cq.poll().has_value());
    EXPECT_EQ(cq.totalCompletions(), 2u);
}

TEST(CompletionQueue, NotifyFiresOnPush)
{
    sim::Simulator s;
    CompletionQueue cq(s);
    int woken = 0;
    cq.notify([&] { ++woken; });
    EXPECT_TRUE(cq.hasWaiter());
    s.run();
    EXPECT_EQ(woken, 0); // nothing pushed yet
    cq.push({std::make_shared<Descriptor>(), nullptr, true});
    EXPECT_FALSE(cq.hasWaiter());
    s.run();
    EXPECT_EQ(woken, 1);
    // One-shot: further pushes do not re-fire.
    cq.push({std::make_shared<Descriptor>(), nullptr, true});
    s.run();
    EXPECT_EQ(woken, 1);
}

TEST(CompletionQueue, NotifyWithPendingFiresImmediately)
{
    sim::Simulator s;
    CompletionQueue cq(s);
    cq.push({std::make_shared<Descriptor>(), nullptr, true});
    int woken = 0;
    cq.notify([&] { ++woken; });
    s.run();
    EXPECT_EQ(woken, 1);
}

class ViPairTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fabric = std::make_unique<net::Fabric>(
            sim, net::FabricConfig::clan(), 2);
        nicA = std::make_unique<via::ViaNic>(sim, *fabric, 0);
        nicB = std::make_unique<via::ViaNic>(sim, *fabric, 1);
        va = nicA->createVi(via::Reliability::ReliableDelivery);
        vb = nicB->createVi(via::Reliability::ReliableDelivery);
        via::ViaNic::connect(*va, *vb);
    }

    sim::Simulator sim;
    std::unique_ptr<net::Fabric> fabric;
    std::unique_ptr<via::ViaNic> nicA, nicB;
    via::VirtualInterface *va = nullptr, *vb = nullptr;
};

TEST_F(ViPairTest, ConnectSetsPeers)
{
    EXPECT_TRUE(va->connected());
    EXPECT_EQ(va->peer(), vb);
    EXPECT_EQ(vb->peer(), va);
    EXPECT_EQ(va->node(), 0);
    EXPECT_EQ(vb->node(), 1);
}

TEST_F(ViPairTest, RecvQueueCounts)
{
    auto buf = nicB->registerMemory(4096);
    vb->postRecv(via::makeRecv(buf.base, 4096));
    vb->postRecv(via::makeRecv(buf.base, 4096));
    EXPECT_EQ(vb->recvPosted(), 2u);
}

TEST_F(ViPairTest, SendOnUnconnectedViErrors)
{
    auto *lone = nicA->createVi(via::Reliability::ReliableDelivery);
    auto buf = nicA->registerMemory(4096);
    lone->postSend(via::makeSend(buf.base, 100));
    auto done = lone->pollSend();
    ASSERT_TRUE(done);
    EXPECT_EQ(done->status, via::Status::ErrorDisconnected);
}

TEST_F(ViPairTest, SendFromUnregisteredMemoryErrors)
{
    // No region registered on A: the DMA source check must fail.
    va->postSend(via::makeSend(0xdead0000, 128));
    sim.run();
    auto done = va->pollSend();
    ASSERT_TRUE(done);
    EXPECT_EQ(done->status, via::Status::ErrorNotRegistered);
}

TEST_F(ViPairTest, MismatchedReliabilityRefusesConnect)
{
    auto *u = nicA->createVi(via::Reliability::Unreliable);
    auto *r = nicB->createVi(via::Reliability::ReliableDelivery);
    EXPECT_DEATH(via::ViaNic::connect(*u, *r), "reliability mismatch");
}

TEST_F(ViPairTest, SendQueueDepthBounded)
{
    auto buf = nicA->registerMemory(4096);
    auto dst = nicB->registerMemory(4096);
    // Fill the send queue to its advertised depth without running the
    // simulator (the NIC cannot drain).
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < via::VirtualInterface::MaxQueueDepth + 8;
         ++i) {
        if (va->postSend(via::makeRdmaWrite(buf.base, 4, dst.base)))
            ++accepted;
        else
            break;
    }
    EXPECT_EQ(accepted, via::VirtualInterface::MaxQueueDepth);
    // Draining the NIC frees slots again.
    sim.run();
    EXPECT_TRUE(va->postSend(via::makeRdmaWrite(buf.base, 4, dst.base)));
}

TEST_F(ViPairTest, RecvQueueDepthBounded)
{
    auto buf = nicB->registerMemory(4096);
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < via::VirtualInterface::MaxQueueDepth + 8;
         ++i) {
        if (vb->postRecv(via::makeRecv(buf.base, 64)))
            ++accepted;
        else
            break;
    }
    EXPECT_EQ(accepted, via::VirtualInterface::MaxQueueDepth);
}
