/**
 * @file
 * Tests for FifoResource: serial service, queueing, busy accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.hpp"

using press::sim::FifoResource;
using press::sim::Simulator;
using press::sim::Tick;

TEST(FifoResource, ServesSerially)
{
    Simulator sim;
    FifoResource r(sim, "cpu");
    std::vector<Tick> done;
    r.submit(10, 0, [&] { done.push_back(sim.now()); });
    r.submit(5, 0, [&] { done.push_back(sim.now()); });
    r.submit(1, 0, [&] { done.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(done, (std::vector<Tick>{10, 15, 16}));
    EXPECT_EQ(r.completed(), 3u);
}

TEST(FifoResource, BusyTimeByCategory)
{
    Simulator sim;
    FifoResource r(sim, "cpu");
    r.submit(10, 0);
    r.submit(20, 1);
    r.submit(30, 1);
    sim.run();
    EXPECT_EQ(r.busyTime(), 60);
    EXPECT_EQ(r.busyTime(0), 10);
    EXPECT_EQ(r.busyTime(1), 50);
    EXPECT_EQ(r.busyTime(7), 0);
}

TEST(FifoResource, UtilizationOverWindow)
{
    Simulator sim;
    FifoResource r(sim, "cpu");
    r.submit(25, 0);
    sim.schedule(100, [] {}); // stretch the clock
    sim.run();
    EXPECT_NEAR(r.utilization(), 0.25, 1e-9);
}

TEST(FifoResource, SubmitFromCompletion)
{
    Simulator sim;
    FifoResource r(sim, "cpu");
    std::vector<Tick> done;
    r.submit(10, 0, [&] {
        done.push_back(sim.now());
        r.submit(10, 0, [&] { done.push_back(sim.now()); });
    });
    sim.run();
    EXPECT_EQ(done, (std::vector<Tick>{10, 20}));
}

TEST(FifoResource, ZeroCostJobsKeepOrder)
{
    Simulator sim;
    FifoResource r(sim, "cpu");
    std::vector<int> order;
    r.submit(5, 0, [&] { order.push_back(1); });
    r.submit(0, 0, [&] { order.push_back(2); });
    r.submit(0, 0, [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(FifoResource, MaxDepthTracksBacklog)
{
    Simulator sim;
    FifoResource r(sim, "cpu");
    for (int i = 0; i < 5; ++i)
        r.submit(10, 0);
    EXPECT_EQ(r.maxDepth(), 5u);
    sim.run();
    EXPECT_EQ(r.queued(), 0u);
    EXPECT_FALSE(r.busy());
}

TEST(FifoResource, ResetStatsClearsAccounting)
{
    Simulator sim;
    FifoResource r(sim, "cpu");
    r.submit(10, 2);
    sim.run();
    r.resetStats();
    EXPECT_EQ(r.busyTime(), 0);
    EXPECT_EQ(r.busyTime(2), 0);
    EXPECT_EQ(r.completed(), 0u);
    r.submit(5, 2);
    sim.run();
    EXPECT_EQ(r.busyTime(2), 5);
}

/** Property: total busy time equals the sum of submitted service times
 *  regardless of arrival pattern. */
class ResourceLoad : public ::testing::TestWithParam<int>
{
};

TEST_P(ResourceLoad, WorkConservation)
{
    int jobs = GetParam();
    Simulator sim;
    FifoResource r(sim, "cpu");
    Tick total = 0;
    for (int i = 0; i < jobs; ++i) {
        Tick cost = (i * 37) % 100;
        total += cost;
        sim.schedule((i * 13) % 50,
                     [&r, cost] { r.submit(cost, cost % 3); });
    }
    sim.run();
    EXPECT_EQ(r.busyTime(), total);
    EXPECT_EQ(r.busyTime(0) + r.busyTime(1) + r.busyTime(2), total);
    EXPECT_EQ(r.completed(), static_cast<std::uint64_t>(jobs));
}

INSTANTIATE_TEST_SUITE_P(Loads, ResourceLoad,
                         ::testing::Values(1, 10, 100, 1000));

TEST(FifoResource, SpeedScalesServiceTime)
{
    Simulator sim;
    FifoResource r(sim, "cpu");
    r.setSpeed(2.0);
    std::vector<Tick> done;
    r.submit(100, 0, [&] { done.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], 50);
    EXPECT_EQ(r.busyTime(), 50);

    FifoResource slow(sim, "slow");
    slow.setSpeed(0.5);
    Tick start = sim.now();
    slow.submit(100, 0, [&] { done.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(done[1] - start, 200);
}
