/**
 * @file
 * Tests for the analytical model: Zipf mathematics, Table 5 rates,
 * locality quantities, and the qualitative claims of Figures 8-13.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/press_model.hpp"
#include "model/zipf_math.hpp"

using namespace press::model;

TEST(ZipfMath, HarmonicMatchesDirectSum)
{
    double direct = 0;
    for (int i = 1; i <= 1000; ++i)
        direct += std::pow(i, -0.8);
    EXPECT_NEAR(harmonic(1000, 0.8), direct, 1e-9);
}

TEST(ZipfMath, HarmonicContinuationIsSmooth)
{
    // Across the exact/Euler-Maclaurin boundary (200000).
    double below = harmonic(199999, 0.8);
    double at = harmonic(200000, 0.8);
    double above = harmonic(200001, 0.8);
    EXPECT_LT(below, at);
    EXPECT_LT(at, above);
    EXPECT_NEAR(above - at, at - below, 1e-6);
}

TEST(ZipfMath, AccumBoundsAndMonotonicity)
{
    EXPECT_DOUBLE_EQ(zipfAccum(0, 100, 0.8), 0.0);
    EXPECT_DOUBLE_EQ(zipfAccum(100, 100, 0.8), 1.0);
    EXPECT_DOUBLE_EQ(zipfAccum(200, 100, 0.8), 1.0);
    double prev = 0;
    for (double n = 10; n <= 100; n += 10) {
        double z = zipfAccum(n, 100, 0.8);
        EXPECT_GT(z, prev);
        prev = z;
    }
}

TEST(ZipfMath, FractionalArgumentsInterpolate)
{
    double lo = zipfAccum(10, 100, 0.8);
    double mid = zipfAccum(10.5, 100, 0.8);
    double hi = zipfAccum(11, 100, 0.8);
    EXPECT_GT(mid, lo);
    EXPECT_LT(mid, hi);
}

TEST(ZipfMath, SolvePopulationInverts)
{
    double cached = 8000;
    for (double target : {0.3, 0.5, 0.7, 0.9, 0.99}) {
        double f = solvePopulation(target, cached, 0.8);
        EXPECT_NEAR(zipfAccum(cached, f, 0.8), target, 1e-6);
        EXPECT_GE(f, cached);
    }
    EXPECT_DOUBLE_EQ(solvePopulation(1.0, cached, 0.8), cached);
}

TEST(ModelLocality, MatchesSection41Formulas)
{
    PressModel m(ModelParams::via());
    Locality loc = m.localityFromHitRate(8, 0.9);
    // Hsn reproduced.
    EXPECT_NEAR(loc.hsn, 0.9, 1e-6);
    // Cluster cache is bigger, so Hlc > Hsn; replication keeps h < Hsn.
    EXPECT_GT(loc.hlc, loc.hsn);
    EXPECT_LT(loc.h, loc.hsn);
    // Q = (N-1)(1-h)/N.
    EXPECT_NEAR(loc.q, 7.0 / 8.0 * (1 - loc.h), 1e-9);
}

TEST(ModelLocality, SingleNodeNeverForwards)
{
    PressModel m(ModelParams::via());
    Locality loc = m.localityFromHitRate(1, 0.8);
    EXPECT_DOUBLE_EQ(loc.q, 0.0);
}

TEST(ModelDemands, DiskBottleneckAtLowHitRates)
{
    PressModel m(ModelParams::via());
    auto p = m.predict(2, 0.25);
    EXPECT_STREQ(p.demands.bottleneck(), "disk");
}

TEST(ModelDemands, CpuBottleneckWhenCachesWork)
{
    PressModel m(ModelParams::tcp());
    auto p = m.predict(8, 0.9);
    EXPECT_STREQ(p.demands.bottleneck(), "cpu");
}

TEST(ModelPrediction, ThroughputScalesWithNodes)
{
    PressModel m(ModelParams::via());
    double prev = 0;
    for (int n : {1, 2, 4, 8, 16}) {
        double t = m.predict(n, 0.9).throughput;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(ModelPrediction, ViaBeatsTcpWhenCpuBound)
{
    PressModel via(ModelParams::via()), tcp(ModelParams::tcp());
    EXPECT_GT(improvement(via, tcp, 8, 0.9), 1.05);
    // Disk-bound region: no benefit (Figure 8's flat floor).
    EXPECT_NEAR(improvement(via, tcp, 2, 0.2), 1.0, 1e-9);
}

TEST(ModelPrediction, Figure8Shape)
{
    // Gains grow with node count and peak in the 30-60% hit-rate band
    // for large clusters, staying under ~1.4 (paper: up to 1.37).
    PressModel via(ModelParams::via()), tcp(ModelParams::tcp());
    double g8 = improvement(via, tcp, 8, 0.9);
    double g128 = improvement(via, tcp, 128, 0.9);
    EXPECT_GE(g128, g8 * 0.99);
    double best = 0;
    for (double h = 0.2; h <= 1.0; h += 0.02)
        best = std::max(best, improvement(via, tcp, 128, h));
    EXPECT_GT(best, 1.2);
    EXPECT_LT(best, 1.45);
}

TEST(ModelPrediction, Figure9FileSizeDecline)
{
    // Larger files shrink the low-overhead gain (paper: 48% -> ~4%).
    double prev = 10;
    for (double s : {4e3, 16e3, 64e3, 128e3}) {
        ModelParams a = ModelParams::via();
        ModelParams b = ModelParams::tcp();
        a.avgFileBytes = b.avgFileBytes = s;
        double g = improvement(PressModel(a), PressModel(b), 128, 0.9);
        EXPECT_LT(g, prev + 1e-9);
        prev = g;
    }
    // Small-file end approaches the paper's ~1.48.
    ModelParams a = ModelParams::via();
    ModelParams b = ModelParams::tcp();
    a.avgFileBytes = b.avgFileBytes = 4e3;
    double g4k = improvement(PressModel(a), PressModel(b), 128, 0.9);
    EXPECT_GT(g4k, 1.25);
    EXPECT_LT(g4k, 1.55);
}

TEST(ModelPrediction, Figure10RmwZeroCopyBand)
{
    // RMW + zero-copy over regular VIA: bounded by ~12% (paper).
    PressModel rmw(ModelParams::viaRmwZc()), via(ModelParams::via());
    double best = 0;
    for (int n : {8, 32, 128})
        for (double h = 0.2; h <= 1.0; h += 0.05)
            best = std::max(best, improvement(rmw, via, n, h));
    EXPECT_GT(best, 1.06);
    EXPECT_LT(best, 1.16);
}

TEST(ModelPrediction, FutureSystemsReachHigherGains)
{
    // Figures 12/13: next-generation systems push user-level gains
    // beyond the current-system maximum (paper: 49% -> 55%).
    PressModel via_f(ModelParams::viaRmwZcFuture());
    PressModel tcp_f(ModelParams::tcpFuture());
    PressModel via_c(ModelParams::viaRmwZc());
    PressModel tcp_c(ModelParams::tcp());
    double best_future = 0, best_current = 0;
    for (int n : {32, 128})
        for (double h = 0.2; h <= 1.0; h += 0.05) {
            best_future =
                std::max(best_future, improvement(via_f, tcp_f, n, h));
            best_current =
                std::max(best_current, improvement(via_c, tcp_c, n, h));
        }
    EXPECT_GT(best_future, best_current);
    EXPECT_LT(best_future, 1.7);
}

TEST(ModelPrediction, TwoMessageRmwLoadsInternalNic)
{
    PressModel rmw(ModelParams::viaRmwZc()), via(ModelParams::via());
    auto loc = via.localityFromHitRate(8, 0.9);
    auto d_rmw = rmw.demands(8, loc);
    auto d_via = via.demands(8, loc);
    EXPECT_GT(d_rmw.niInternal, d_via.niInternal); // metadata message
    EXPECT_LT(d_rmw.cpu, d_via.cpu);               // but less CPU
}

/** Property sweep: model sanity across the (nodes, hit-rate) grid. */
class ModelGrid
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(ModelGrid, PredictionsSane)
{
    auto [nodes, hsn] = GetParam();
    PressModel via(ModelParams::via()), tcp(ModelParams::tcp());
    auto pv = via.predict(nodes, hsn);
    auto pt = tcp.predict(nodes, hsn);
    EXPECT_GT(pv.throughput, 0);
    EXPECT_GE(pv.throughput, pt.throughput * 0.999);
    EXPECT_GE(pv.locality.hlc, pv.locality.hsn - 1e-9);
    EXPECT_GE(pv.locality.q, 0.0);
    EXPECT_LE(pv.locality.q, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelGrid,
    ::testing::Combine(::testing::Values(1, 4, 16, 64, 128),
                       ::testing::Values(0.2, 0.5, 0.8, 0.95)));

TEST(ModelServerKinds, ObliviousLosesWhenWorkingSetExceedsNode)
{
    // At Hsn = 0.6 the cluster cache rescues the locality-conscious
    // server; the oblivious one keeps missing to disk.
    PressModel press_m(ModelParams::via());
    PressModel obl(ModelParams::via(), ServerKind::ContentOblivious);
    auto loc = press_m.localityFromHitRate(8, 0.6);
    auto p = press_m.predictFromPopulation(8, loc.files);
    auto o = obl.predictFromPopulation(8, loc.files);
    EXPECT_GT(p.throughput, o.throughput);
    EXPECT_EQ(o.locality.q, 0.0);
    EXPECT_NEAR(o.locality.hlc, o.locality.hsn, 1e-12);
}

TEST(ModelServerKinds, FrontEndIsTheUpperBound)
{
    // LARD-style routing has all the locality with none of the
    // transfers: it must dominate PRESS, which must dominate oblivious
    // (once caches matter).
    for (double hsn : {0.5, 0.7, 0.9}) {
        PressModel press_m(ModelParams::viaRmwZc());
        auto loc = press_m.localityFromHitRate(8, hsn);
        PressModel fe(ModelParams::viaRmwZc(), ServerKind::FrontEnd);
        PressModel obl(ModelParams::viaRmwZc(),
                       ServerKind::ContentOblivious);
        double tp = press_m.predictFromPopulation(8, loc.files).throughput;
        double tf = fe.predictFromPopulation(8, loc.files).throughput;
        double to = obl.predictFromPopulation(8, loc.files).throughput;
        EXPECT_GE(tf, tp * 0.999) << "hsn " << hsn;
        EXPECT_GE(tp, to * 0.999) << "hsn " << hsn;
    }
}

TEST(ModelServerKinds, PressWithinReachOfFrontEnd)
{
    // Section 2.2: PRESS within 7% of LARD at 8 nodes, and modeled
    // portability cost <= 15% even at 96 nodes.
    PressModel press_m(ModelParams::viaRmwZc());
    PressModel fe(ModelParams::viaRmwZc(), ServerKind::FrontEnd);
    auto loc = press_m.localityFromHitRate(8, 0.9);
    double ratio8 =
        press_m.predictFromPopulation(8, loc.files).throughput /
        fe.predictFromPopulation(8, loc.files).throughput;
    EXPECT_GT(ratio8, 0.85);
    double ratio96 =
        press_m.predictFromPopulation(96, loc.files).throughput /
        fe.predictFromPopulation(96, loc.files).throughput;
    EXPECT_GT(ratio96, 0.80);
}
