/**
 * @file
 * Randomized configuration sweep ("fuzz"): run many randomly drawn
 * cluster configurations end-to-end and check the invariants that must
 * hold for every one of them — conservation (every request answered
 * exactly once), no flow-control violations (reliable VIA runs panic on
 * overrun, so merely finishing is the assertion), no malformed HTTP,
 * and determinism.
 */

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "util/random.hpp"
#include "workload/trace_gen.hpp"

using namespace press;
using namespace press::core;

namespace {

PressConfig
randomConfig(util::Rng &rng)
{
    PressConfig c;
    c.nodes = 1 + static_cast<int>(rng.uniformInt(6));
    switch (rng.uniformInt(3)) {
      case 0:
        c.protocol = Protocol::TcpFastEthernet;
        break;
      case 1:
        c.protocol = Protocol::TcpClan;
        break;
      default:
        c.protocol = Protocol::ViaClan;
        break;
    }
    c.version = static_cast<Version>(rng.uniformInt(6));
    switch (rng.uniformInt(4)) {
      case 0:
        c.dissemination = Dissemination::piggyBack();
        break;
      case 1:
        c.dissemination = Dissemination::broadcast(
            1 + static_cast<int>(rng.uniformInt(16)),
            rng.uniform() < 0.5);
        break;
      case 2:
        c.dissemination = Dissemination::none();
        break;
      default:
        c.dissemination = Dissemination::piggyBack();
        break;
    }
    if (rng.uniform() < 0.2)
        c.distribution = Distribution::LocalOnly;
    else if (rng.uniform() < 0.2)
        c.distribution = Distribution::FrontEndLard;
    c.controlWindow = 1 + static_cast<int>(rng.uniformInt(12));
    c.fileWindow = 1 + static_cast<int>(rng.uniformInt(12));
    c.controlCreditBatch =
        1 + static_cast<int>(rng.uniformInt(c.controlWindow));
    c.fileCreditBatch =
        1 + static_cast<int>(rng.uniformInt(c.fileWindow));
    c.cacheBytes = (1 + rng.uniformInt(24)) * util::MB;
    c.clientsPerNode = 8 + static_cast<int>(rng.uniformInt(80));
    c.overloadThreshold = 10 + static_cast<int>(rng.uniformInt(100));
    c.warmupFraction = rng.uniform() < 0.5 ? 0.0 : 0.4;
    if (rng.uniform() < 0.3) {
        c.cpuSpeeds.resize(c.nodes);
        for (auto &s : c.cpuSpeeds)
            s = 0.3 + rng.uniform() * 1.4;
    }
    c.seed = rng.next();
    return c;
}

} // namespace

class FuzzSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzSweep, InvariantsHoldForRandomConfigs)
{
    util::Rng rng(0xF022 + GetParam());

    workload::TraceSpec spec;
    spec.numFiles = 200 + rng.uniformInt(600);
    spec.numRequests = 4000;
    spec.avgFileSize = 4000 + rng.uniform() * 30000;
    spec.sizeSigma = 0.8 + rng.uniform();
    spec.seed = rng.next();
    workload::Trace trace = workload::generateTrace(spec);

    PressConfig config = randomConfig(rng);
    SCOPED_TRACE(config.label() + " nodes=" +
                 std::to_string(config.nodes) + " win=" +
                 std::to_string(config.controlWindow) + "/" +
                 std::to_string(config.fileWindow));

    PressCluster cluster(config, trace);
    auto r = cluster.run();

    // 1. Conservation: every request answered, none duplicated. (With
    // a warm-up window, requests in flight at the stats reset are
    // answered afterwards, so replies may exceed requests by at most
    // the number of client connections.)
    std::uint64_t requests = 0, replies = 0;
    for (int i = 0; i < config.nodes; ++i) {
        requests += cluster.server(i).stats().requests;
        replies += cluster.server(i).stats().replies;
    }
    if (config.warmupFraction == 0.0) {
        EXPECT_EQ(requests, replies);
    } else {
        EXPECT_GE(replies, requests);
        EXPECT_LE(replies - requests,
                  static_cast<std::uint64_t>(config.clientsPerNode) *
                      config.nodes);
    }
    EXPECT_TRUE(cluster.simulator().idle());

    // 2. The HTTP pipeline never rejected a generated request.
    EXPECT_EQ(cluster.badRequests(), 0u);

    // 3. Sane outputs.
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_GE(r.forwardFraction, 0.0);
    EXPECT_LE(r.forwardFraction, 1.0);

    // 4. Determinism: an identical rerun produces identical results.
    PressCluster again(config, trace);
    auto r2 = again.run();
    EXPECT_DOUBLE_EQ(r.throughput, r2.throughput);
    EXPECT_EQ(r.comm.total().bytes, r2.comm.total().bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 24));
