/**
 * @file
 * Tests for the comparison distribution modes: content-oblivious local
 * service and the LARD-style front-end.
 */

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace press;
using namespace press::core;

namespace {

workload::Trace
baselineTrace(std::uint64_t requests = 20000)
{
    workload::TraceSpec spec;
    spec.name = "baseline";
    spec.numFiles = 600;
    spec.numRequests = requests;
    spec.avgFileSize = 12000;
    spec.seed = 31;
    return workload::generateTrace(spec);
}

PressConfig
baseConfig(Distribution mode)
{
    PressConfig c;
    c.nodes = 4;
    c.distribution = mode;
    c.protocol = Protocol::TcpClan;
    c.cacheBytes = 3 * util::MB; // working set ~7 MB: exceeds one node
    c.clientsPerNode = 40;
    return c;
}

} // namespace

TEST(ObliviousMode, NoIntraClusterTraffic)
{
    workload::Trace trace = baselineTrace();
    PressCluster cluster(baseConfig(Distribution::LocalOnly), trace);
    auto r = cluster.run();
    EXPECT_EQ(r.comm.total().msgs, 0u);
    EXPECT_EQ(r.forwardFraction, 0.0);
    EXPECT_GT(r.throughput, 0);
    EXPECT_EQ(cluster.badRequests(), 0u);
}

TEST(ObliviousMode, LosesToPressWhenWorkingSetExceedsOneNode)
{
    workload::Trace trace = baselineTrace(30000);
    auto obl =
        PressCluster(baseConfig(Distribution::LocalOnly), trace).run();
    auto press_r =
        PressCluster(baseConfig(Distribution::LocalityConscious), trace)
            .run();
    // The cluster cache (4 x 3 MB) holds the 7 MB working set; a single
    // node's cannot: locality-conscious distribution must win.
    EXPECT_GT(press_r.throughput, obl.throughput);
    EXPECT_GT(obl.diskUtilization, press_r.diskUtilization);
}

TEST(LardMode, RoutesAndCompletesEverything)
{
    workload::Trace trace = baselineTrace();
    PressConfig c = baseConfig(Distribution::FrontEndLard);
    c.warmupFraction = 0;
    PressCluster cluster(c, trace);
    auto r = cluster.run();
    std::uint64_t replies = 0;
    for (int i = 0; i < c.nodes; ++i)
        replies += cluster.server(i).stats().replies;
    EXPECT_EQ(replies, trace.requests.size());
    EXPECT_EQ(r.comm.total().msgs, 0u); // no intra-cluster messages
    EXPECT_EQ(cluster.badRequests(), 0u);
    EXPECT_TRUE(cluster.simulator().idle());
}

TEST(LardMode, BuildsLocality)
{
    workload::Trace trace = baselineTrace(30000);
    PressConfig c = baseConfig(Distribution::FrontEndLard);
    PressCluster cluster(c, trace);
    auto r = cluster.run();
    // Locality-aware routing keeps per-node caches hot even though each
    // holds only part of the working set.
    EXPECT_GT(r.localHitFraction, 0.7);
}

TEST(LardMode, BeatsOblivious)
{
    workload::Trace trace = baselineTrace(30000);
    auto lard =
        PressCluster(baseConfig(Distribution::FrontEndLard), trace)
            .run();
    auto obl =
        PressCluster(baseConfig(Distribution::LocalOnly), trace).run();
    EXPECT_GT(lard.throughput, obl.throughput);
}

TEST(LardMode, PressIsCompetitive)
{
    // The paper: PRESS within 7% of scalable LARD on 8 nodes. Allow a
    // wider band at this small test scale, but PRESS must be in LARD's
    // neighbourhood, not far behind.
    workload::Trace trace = baselineTrace(40000);
    PressConfig press_c = baseConfig(Distribution::LocalityConscious);
    press_c.protocol = Protocol::ViaClan;
    press_c.version = Version::V5;
    auto press_r = PressCluster(press_c, trace).run();
    auto lard =
        PressCluster(baseConfig(Distribution::FrontEndLard), trace)
            .run();
    EXPECT_GT(press_r.throughput, lard.throughput * 0.75);
}

TEST(Labels, DistributionVisibleInLabel)
{
    PressConfig c;
    c.distribution = Distribution::FrontEndLard;
    EXPECT_NE(c.label().find("LARD"), std::string::npos);
    c.distribution = Distribution::LocalOnly;
    EXPECT_NE(c.label().find("oblivious"), std::string::npos);
}

TEST(Heterogeneity, LoadAwareBeatsBlindOnSkewedCluster)
{
    workload::Trace trace = baselineTrace(40000);
    PressConfig pb = baseConfig(Distribution::LocalityConscious);
    pb.protocol = Protocol::ViaClan;
    pb.cacheBytes = 16 * util::MB;
    pb.cpuSpeeds = {0.4, 1.0, 0.4, 1.0};
    PressConfig nlb = pb;
    nlb.dissemination = Dissemination::none();
    auto r_pb = PressCluster(pb, trace).run();
    auto r_nlb = PressCluster(nlb, trace).run();
    EXPECT_GT(r_pb.throughput, r_nlb.throughput);
}
