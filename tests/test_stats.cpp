/**
 * @file
 * Tests for the statistics library.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/accumulator.hpp"
#include "stats/histogram.hpp"

using press::stats::Accumulator;
using press::stats::LogHistogram;

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.variance(), 4.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, MergeMatchesCombined)
{
    Accumulator a, b, all;
    for (int i = 0; i < 50; ++i) {
        double x = std::sin(i) * 10;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty)
{
    Accumulator a, empty;
    a.add(1);
    a.add(3);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator a;
    a.add(5);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(LogHistogram, BucketsPowersOfTwo)
{
    LogHistogram h;
    h.add(0);   // bucket 0
    h.add(1);   // bucket 0  [1,2)
    h.add(2);   // bucket 1  [2,4)
    h.add(3);   // bucket 1
    h.add(4);   // bucket 2  [4,8)
    h.add(1024);// bucket 10
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(10), 1u);
    EXPECT_EQ(h.bucket(99), 0u);
}

TEST(LogHistogram, QuantilesOrdered)
{
    LogHistogram h;
    for (int i = 1; i <= 10000; ++i)
        h.add(i);
    double q50 = h.quantile(0.5);
    double q90 = h.quantile(0.9);
    double q99 = h.quantile(0.99);
    EXPECT_LE(q50, q90);
    EXPECT_LE(q90, q99);
    // Median of 1..10000 is ~5000; log buckets are coarse, so allow a
    // bucket's worth of slack.
    EXPECT_GT(q50, 2500);
    EXPECT_LT(q50, 10000);
}

TEST(LogHistogram, EmptyQuantileIsZero)
{
    LogHistogram h;
    EXPECT_EQ(h.quantile(0.0), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(LogHistogram, SingleSampleQuantileStaysInBucket)
{
    LogHistogram h;
    h.add(5); // bucket 2: [4, 8)
    // Every quantile of a one-sample histogram must land inside that
    // sample's bucket, with q=0/q=1 pinned to its edges.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
    for (double q : {0.1, 0.5, 0.9}) {
        EXPECT_GE(h.quantile(q), 4.0);
        EXPECT_LE(h.quantile(q), 8.0);
    }
}

TEST(LogHistogram, AllEqualSamplesGiveExactMedian)
{
    LogHistogram h;
    for (int i = 0; i < 1000; ++i)
        h.add(3); // bucket 1: [2, 4); uniform-in-bucket median = 3
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(LogHistogram, OutOfRangeQuantileClamps)
{
    LogHistogram h;
    h.add(3);
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(LogHistogram, NegativeClampsToZeroBucket)
{
    LogHistogram h;
    h.add(-5);
    EXPECT_EQ(h.bucket(0), 1u);
}

TEST(LogHistogram, RenderContainsCounts)
{
    LogHistogram h;
    h.add(3);
    h.add(3);
    std::string out = h.render();
    EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(LogHistogram, MergeAddsBuckets)
{
    LogHistogram a, b;
    a.add(3);
    a.add(100);
    b.add(3);
    b.add(1 << 20);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.bucket(1), 2u);  // two 3s
    EXPECT_EQ(a.bucket(20), 1u); // the megabyte sample
}
