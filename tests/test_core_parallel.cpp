/**
 * @file
 * Full-cluster byte-identity tests for the parallel kernel.
 *
 * config.threads >= 1 runs the windowed kernel; its determinism
 * contract is that the complete observable output of a run — results
 * struct, stats dump, trace bytes, lookahead lane table — is identical
 * for every thread count. threads == 1 is the baseline (same kernel,
 * no concurrency); 2 and 4 must reproduce it bit-for-bit on the
 * golden-trio scenarios plus the LARD front-end (whose load-table
 * decrement rides the crossCall reverse edge).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/cluster.hpp"
#include "obs/trace_io.hpp"
#include "workload/trace_gen.hpp"

using namespace press;

namespace {

workload::Trace
smallTrace()
{
    auto spec = workload::clarknetSpec();
    spec.numRequests = 6000;
    return workload::generateTrace(spec);
}

/** Everything a run can show the outside world, as one string. */
std::string
runFingerprint(core::PressConfig config, const workload::Trace &trace)
{
    config.trace = true;
    core::PressCluster cluster(config, trace);
    auto r = cluster.run(3000);

    std::ostringstream fp;
    fp.precision(17);
    fp << "throughput " << r.throughput << "\n";
    fp << "avg_ms " << r.avgLatencyMs << "\n";
    fp << "p50_ms " << r.p50LatencyMs << "\n";
    fp << "p99_ms " << r.p99LatencyMs << "\n";
    fp << "measured " << r.requestsMeasured << "\n";
    fp << "forward " << r.forwardFraction << "\n";
    fp << "local_hit " << r.localHitFraction << "\n";
    fp << "disk_reads " << r.diskReads << "\n";
    fp << "insertions " << r.cacheInsertions << "\n";
    fp << "cpu_util " << r.cpuUtilization << "\n";
    fp << "events " << cluster.simulator().eventsExecuted() << "\n";
    fp << "now " << cluster.simulator().now() << "\n";
    cluster.dumpStats(fp);
    cluster.writeLaneTable(fp);
    if (r.trace)
        obs::writeTrace(fp, *r.trace);
    return fp.str();
}

void
expectThreadIdentity(core::PressConfig config)
{
    auto trace = smallTrace();
    config.threads = 1;
    std::string base = runFingerprint(config, trace);
    ASSERT_FALSE(base.empty());

    config.threads = 2;
    EXPECT_EQ(base, runFingerprint(config, trace));

    config.threads = 4;
    EXPECT_EQ(base, runFingerprint(config, trace));
}

} // namespace

TEST(ParallelCluster, ViaV5ByteIdentical)
{
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V5;
    config.nodes = 4;
    expectThreadIdentity(config);
}

TEST(ParallelCluster, TcpFastEthernetByteIdentical)
{
    core::PressConfig config;
    config.protocol = core::Protocol::TcpFastEthernet;
    config.nodes = 4;
    expectThreadIdentity(config);
}

TEST(ParallelCluster, TcpClanByteIdentical)
{
    core::PressConfig config;
    config.protocol = core::Protocol::TcpClan;
    config.nodes = 4;
    expectThreadIdentity(config);
}

TEST(ParallelCluster, LardFrontEndByteIdentical)
{
    core::PressConfig config;
    config.protocol = core::Protocol::TcpFastEthernet;
    config.distribution = core::Distribution::FrontEndLard;
    config.nodes = 4;
    expectThreadIdentity(config);
}

TEST(ParallelCluster, LaneTableRespectsLookahead)
{
    auto trace = smallTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V2;
    config.nodes = 3;
    config.threads = 2;
    core::PressCluster cluster(config, trace);
    cluster.run(1500);

    const auto &lanes = cluster.simulator().laneStats();
    ASSERT_FALSE(lanes.empty());
    for (const auto &lane : lanes) {
        EXPECT_GE(lane.minDelay, lane.bound)
            << "lane " << lane.from << " -> " << lane.to
            << " broke the lookahead bound";
        EXPECT_GT(lane.count, 0u);
    }
}

TEST(ParallelCluster, ChecksForcedOffUnderParallel)
{
    // check.sh exports PRESS_CHECK=1/PRESS_CAUSALITY=1; both observers
    // assume one globally ordered stream, so the parallel constructor
    // must refuse to create them no matter what the environment says.
    auto trace = smallTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.nodes = 2;
    config.threads = 2;
    config.viaCheck = core::ViaCheck::Abort;
    config.causality = core::ViaCheck::Abort;
    core::PressCluster cluster(config, trace);
    EXPECT_EQ(cluster.viaChecker(), nullptr);
    EXPECT_EQ(cluster.causalityChecker(), nullptr);
    cluster.run(500);
    EXPECT_FALSE(cluster.simulator().laneStats().empty());
}
