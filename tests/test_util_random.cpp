/**
 * @file
 * Unit and property tests for the deterministic RNG and samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.hpp"

using press::util::Rng;
using press::util::ZipfSampler;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 100000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(9);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i) {
        auto v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        ++counts[v];
    }
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0;
    const double mean = 4.2;
    for (int i = 0; i < 200000; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / 200000, mean, 0.05);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(3.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.03);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(Rng, LognormalLinearMean)
{
    Rng rng(17);
    double sum = 0;
    const int n = 400000;
    for (int i = 0; i < n; ++i)
        sum += rng.lognormalByMean(14200.0, 1.3);
    EXPECT_NEAR(sum / n / 14200.0, 1.0, 0.03);
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng a(21);
    Rng b = a.split();
    // The split stream must differ from the parent's continuation.
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Zipf, ProbabilitiesSumToOne)
{
    ZipfSampler z(1000, 0.8);
    double sum = 0;
    for (std::size_t i = 0; i < z.size(); ++i)
        sum += z.probability(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, MonotonicallyDecreasing)
{
    ZipfSampler z(500, 0.8);
    for (std::size_t i = 1; i < z.size(); ++i)
        EXPECT_LE(z.probability(i), z.probability(i - 1));
}

TEST(Zipf, AccumulatedMatchesProbabilities)
{
    ZipfSampler z(100, 0.7);
    double run = 0;
    for (std::size_t i = 0; i < 100; ++i) {
        run += z.probability(i);
        EXPECT_NEAR(z.accumulated(i + 1), run, 1e-9);
    }
    EXPECT_DOUBLE_EQ(z.accumulated(0), 0.0);
    EXPECT_DOUBLE_EQ(z.accumulated(1000), 1.0);
}

TEST(Zipf, SamplingMatchesDistribution)
{
    ZipfSampler z(50, 0.8);
    Rng rng(33);
    std::vector<int> counts(50, 0);
    const int n = 500000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (std::size_t i = 0; i < 10; ++i) {
        double expect = z.probability(i) * n;
        EXPECT_NEAR(counts[i], expect, expect * 0.05 + 50);
    }
}

/** Property sweep: Zipf skew must hold across alpha values. */
class ZipfAlpha : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfAlpha, HeadHeavierThanTail)
{
    double alpha = GetParam();
    ZipfSampler z(10000, alpha);
    // The top 10% of files should carry more than 10% of requests for
    // any positive skew, and increasingly so for larger alpha.
    double head = z.accumulated(1000);
    EXPECT_GT(head, 0.1);
    if (alpha >= 0.8) {
        EXPECT_GT(head, 0.4);
    }
}

TEST_P(ZipfAlpha, AccumulatedIsMonotone)
{
    ZipfSampler z(2000, GetParam());
    double prev = 0;
    for (std::size_t n = 100; n <= 2000; n += 100) {
        double acc = z.accumulated(n);
        EXPECT_GE(acc, prev);
        prev = acc;
    }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlpha,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 0.95));
