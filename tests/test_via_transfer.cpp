/**
 * @file
 * End-to-end tests of the VIA data-transfer semantics: two-sided sends,
 * remote memory writes, reliability levels, ordering, and completion
 * timing — the contract PRESS's comm layer builds on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/payload.hpp"
#include "via/via_nic.hpp"

using namespace press;
using net::makePayload;
using net::payloadAs;

namespace {

struct Harness {
    sim::Simulator sim;
    net::Fabric fabric{sim, net::FabricConfig::clan(), 2};
    via::ViaNic nicA{sim, fabric, 0};
    via::ViaNic nicB{sim, fabric, 1};

    via::VirtualInterface *
    pair(via::Reliability rel, via::CompletionQueue *send_cq = nullptr,
         via::CompletionQueue *recv_cq = nullptr,
         via::VirtualInterface **other = nullptr)
    {
        auto *va = nicA.createVi(rel, send_cq);
        auto *vb = nicB.createVi(rel, nullptr, recv_cq);
        via::ViaNic::connect(*va, *vb);
        if (other)
            *other = vb;
        return va;
    }
};

} // namespace

TEST(ViaTransfer, SendConsumesRecvAndCarriesPayload)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(via::Reliability::ReliableDelivery, nullptr,
                      nullptr, &vb);
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    vb->postRecv(via::makeRecv(dst.base, 4096));

    va->postSend(via::makeSend(src.base, 999,
                               makePayload<std::string>("hello"), 42));
    h.sim.run();

    auto got = vb->pollRecv();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->status, via::Status::Complete);
    EXPECT_EQ(got->bytesDone, 999u);
    EXPECT_EQ(got->immediate, 42u);
    ASSERT_TRUE(got->payload);
    EXPECT_EQ(*payloadAs<std::string>(got->payload), "hello");
    EXPECT_EQ(vb->recvPosted(), 0u);

    auto sent = va->pollSend();
    ASSERT_TRUE(sent);
    EXPECT_EQ(sent->status, via::Status::Complete);
}

TEST(ViaTransfer, InOrderDeliveryOnOneVi)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(via::Reliability::ReliableDelivery, nullptr,
                      nullptr, &vb);
    auto src = h.nicA.registerMemory(1 << 20);
    auto dst = h.nicB.registerMemory(1 << 20);
    for (int i = 0; i < 10; ++i)
        vb->postRecv(via::makeRecv(dst.base, 1 << 20));
    // Mix of sizes: big messages take longer on the wire, but a single
    // VI must still deliver strictly in post order.
    for (int i = 0; i < 10; ++i) {
        std::uint64_t len = (i % 2) ? 200000 : 16;
        va->postSend(via::makeSend(src.base, len, makePayload<int>(i)));
    }
    h.sim.run();
    for (int i = 0; i < 10; ++i) {
        auto got = vb->pollRecv();
        ASSERT_TRUE(got) << "message " << i;
        EXPECT_EQ(*payloadAs<int>(got->payload), i);
    }
}

TEST(ViaTransfer, ReliableOverrunBreaksConnection)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(via::Reliability::ReliableDelivery, nullptr,
                      nullptr, &vb);
    auto src = h.nicA.registerMemory(4096);
    // No receive descriptor posted at B.
    va->postSend(via::makeSend(src.base, 100));
    h.sim.run();
    auto sent = va->pollSend();
    ASSERT_TRUE(sent);
    EXPECT_EQ(sent->status, via::Status::ErrorRecvOverrun);
    EXPECT_TRUE(va->broken());
    EXPECT_TRUE(vb->broken());
    EXPECT_EQ(h.nicB.stats().recvOverruns, 1u);

    // Subsequent sends fail with disconnect.
    va->postSend(via::makeSend(src.base, 100));
    h.sim.run();
    auto again = va->pollSend();
    ASSERT_TRUE(again);
    EXPECT_EQ(again->status, via::Status::ErrorDisconnected);
}

TEST(ViaTransfer, UnreliableOverrunDropsSilently)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va =
        h.pair(via::Reliability::Unreliable, nullptr, nullptr, &vb);
    auto src = h.nicA.registerMemory(4096);
    va->postSend(via::makeSend(src.base, 100));
    h.sim.run();
    // Sender completed OK at TX time; receiver saw a drop.
    auto sent = va->pollSend();
    ASSERT_TRUE(sent);
    EXPECT_EQ(sent->status, via::Status::Complete);
    EXPECT_FALSE(va->broken());
    EXPECT_EQ(h.nicB.stats().dropsUnreliable, 1u);
    EXPECT_FALSE(vb->pollRecv());
}

TEST(ViaTransfer, TooSmallRecvBufferIsOverrun)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(via::Reliability::ReliableDelivery, nullptr,
                      nullptr, &vb);
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    vb->postRecv(via::makeRecv(dst.base, 50)); // too small for 100 B
    va->postSend(via::makeSend(src.base, 100));
    h.sim.run();
    auto recv = vb->pollRecv();
    ASSERT_TRUE(recv);
    EXPECT_EQ(recv->status, via::Status::ErrorRecvOverrun);
    auto sent = va->pollSend();
    ASSERT_TRUE(sent);
    EXPECT_EQ(sent->status, via::Status::ErrorRecvOverrun);
}

TEST(ViaTransfer, RdmaWriteLandsInRemoteRegion)
{
    Harness h;
    auto *va = h.pair(via::Reliability::ReliableDelivery);
    auto src = h.nicA.registerMemory(4096);
    std::vector<std::uint64_t> offsets;
    auto dst = h.nicB.registerMemory(
        8192, [&](std::uint64_t off, std::uint64_t, const via::Payload &,
                  std::uint32_t) { offsets.push_back(off); });

    va->postSend(via::makeRdmaWrite(src.base, 64, dst.base + 512));
    va->postSend(via::makeRdmaWrite(src.base, 64, dst.base + 1024));
    h.sim.run();
    EXPECT_EQ(offsets, (std::vector<std::uint64_t>{512, 1024}));
    // One-sided: no receive descriptor involved, sender completed.
    auto s1 = va->pollSend();
    auto s2 = va->pollSend();
    ASSERT_TRUE(s1 && s2);
    EXPECT_EQ(s1->status, via::Status::Complete);
    EXPECT_EQ(s2->status, via::Status::Complete);
    EXPECT_EQ(h.nicA.stats().rdmaWritesPosted, 2u);
}

TEST(ViaTransfer, RdmaToUnregisteredAddressFails)
{
    Harness h;
    auto *va = h.pair(via::Reliability::ReliableDelivery);
    auto src = h.nicA.registerMemory(4096);
    va->postSend(via::makeRdmaWrite(src.base, 64, 0xbad00000));
    h.sim.run();
    auto sent = va->pollSend();
    ASSERT_TRUE(sent);
    EXPECT_EQ(sent->status, via::Status::ErrorNotRegistered);
    EXPECT_EQ(h.nicB.stats().rdmaBadAddress, 1u);
    EXPECT_TRUE(va->broken());
}

TEST(ViaTransfer, UnreliableSendCompletesAtTxTime)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va =
        h.pair(via::Reliability::Unreliable, nullptr, nullptr, &vb);
    auto src = h.nicA.registerMemory(1 << 20);
    auto dst = h.nicB.registerMemory(1 << 20);
    vb->postRecv(via::makeRecv(dst.base, 1 << 20));

    sim::Tick tx_complete = -1, delivered = -1;
    va->postSend(via::makeSend(src.base, 500000));
    // Poll-style: watch for the send completion each tick.
    while (h.sim.step()) {
        if (tx_complete < 0 && va->pollSend())
            tx_complete = h.sim.now();
        if (delivered < 0 && vb->pollRecv())
            delivered = h.sim.now();
    }
    ASSERT_GE(tx_complete, 0);
    ASSERT_GE(delivered, 0);
    EXPECT_LT(tx_complete, delivered);
}

TEST(ViaTransfer, CompletionQueueAggregatesVis)
{
    Harness h;
    via::CompletionQueue recv_cq(h.sim);
    via::VirtualInterface *vb1 = nullptr, *vb2 = nullptr;
    auto *va1 = h.nicA.createVi(via::Reliability::ReliableDelivery);
    vb1 = h.nicB.createVi(via::Reliability::ReliableDelivery, nullptr,
                          &recv_cq);
    via::ViaNic::connect(*va1, *vb1);
    auto *va2 = h.nicA.createVi(via::Reliability::ReliableDelivery);
    vb2 = h.nicB.createVi(via::Reliability::ReliableDelivery, nullptr,
                          &recv_cq);
    via::ViaNic::connect(*va2, *vb2);

    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    vb1->postRecv(via::makeRecv(dst.base, 4096));
    vb2->postRecv(via::makeRecv(dst.base, 4096));

    va1->postSend(via::makeSend(src.base, 10, makePayload<int>(1)));
    va2->postSend(via::makeSend(src.base, 10, makePayload<int>(2)));
    h.sim.run();

    EXPECT_EQ(recv_cq.pending(), 2u);
    auto c1 = recv_cq.poll();
    auto c2 = recv_cq.poll();
    ASSERT_TRUE(c1 && c2);
    EXPECT_TRUE(c1->isRecv);
    // Each completion identifies its VI.
    EXPECT_TRUE((c1->vi == vb1 && c2->vi == vb2) ||
                (c1->vi == vb2 && c2->vi == vb1));
}

TEST(ViaTransfer, RegistrationCostScalesWithPages)
{
    Harness h;
    auto one_page = h.nicA.registrationCost(100);
    auto three_pages = h.nicA.registrationCost(4096 * 2 + 1);
    EXPECT_EQ(three_pages, 3 * one_page);
}

/** Paper anchor: a 4-byte VIA/cLAN ping costs ~9 us one way (S3.2),
 *  NIC + wire only (host post costs are charged by the server layer). */
TEST(ViaTransfer, PaperAnchorSmallMessageLatency)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(via::Reliability::ReliableDelivery, nullptr,
                      nullptr, &vb);
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    vb->postRecv(via::makeRecv(dst.base, 4096));

    sim::Tick t0 = h.sim.now();
    sim::Tick arrived = -1;
    va->postSend(via::makeSend(src.base, 4));
    while (h.sim.step())
        if (arrived < 0 && vb->pollRecv())
            arrived = h.sim.now();
    ASSERT_GE(arrived, 0);
    double us = static_cast<double>(arrived - t0) / 1000.0;
    EXPECT_GT(us, 4.0);
    EXPECT_LT(us, 10.0); // paper: 9 us including host costs
}

TEST(ViaTransfer, DisconnectFlushesAndBreaks)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(via::Reliability::ReliableDelivery, nullptr,
                      nullptr, &vb);
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    vb->postRecv(via::makeRecv(dst.base, 4096));
    vb->postRecv(via::makeRecv(dst.base, 4096));

    via::ViaNic::disconnect(*va);
    EXPECT_TRUE(va->broken());
    EXPECT_TRUE(vb->broken());
    // Both posted receives come back flushed.
    auto r1 = vb->pollRecv();
    auto r2 = vb->pollRecv();
    ASSERT_TRUE(r1 && r2);
    EXPECT_EQ(r1->status, via::Status::ErrorFlushed);
    EXPECT_EQ(r2->status, via::Status::ErrorFlushed);
    // Posting after disconnect fails immediately.
    va->postSend(via::makeSend(src.base, 10));
    auto s = va->pollSend();
    ASSERT_TRUE(s);
    EXPECT_EQ(s->status, via::Status::ErrorDisconnected);
}

TEST(ViaTransfer, InFlightTrafficDiscardedOnDisconnect)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(via::Reliability::ReliableDelivery, nullptr,
                      nullptr, &vb);
    auto src = h.nicA.registerMemory(1 << 20);
    auto dst = h.nicB.registerMemory(1 << 20);
    vb->postRecv(via::makeRecv(dst.base, 1 << 20));
    // Launch a large transfer, then disconnect while it is in flight.
    va->postSend(via::makeSend(src.base, 500000));
    h.sim.step(); // let the NIC start
    via::ViaNic::disconnect(*vb);
    h.sim.run();
    auto sent = va->pollSend();
    ASSERT_TRUE(sent);
    EXPECT_EQ(sent->status, via::Status::ErrorDisconnected);
    // The flushed receive descriptor, not a data arrival.
    auto recv = vb->pollRecv();
    ASSERT_TRUE(recv);
    EXPECT_EQ(recv->status, via::Status::ErrorFlushed);
    EXPECT_FALSE(vb->pollRecv());
}
