/**
 * @file
 * Tests for InlineFn, the event kernel's inline-storage callable:
 * capture sizes up to capacity, compile-time rejection beyond it,
 * move-only captures, and destructor discipline.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <type_traits>

#include "sim/event_queue.hpp"
#include "sim/inline_fn.hpp"

using press::sim::EventFn;
using press::sim::InlineFn;

TEST(InlineFn, EmptyByDefault)
{
    EventFn fn;
    EXPECT_FALSE(fn);
    EventFn null_fn = nullptr;
    EXPECT_FALSE(null_fn);
}

TEST(InlineFn, SmallCaptureInvokes)
{
    int hits = 0;
    EventFn fn = [&hits]() { ++hits; };
    ASSERT_TRUE(fn);
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFn, CaptureAtExactCapacityFits)
{
    // One pointer to the result plus padding to exactly 64 bytes.
    struct Full {
        int *out;
        char pad[EventFn::capacity() - sizeof(int *)];
    };
    static_assert(sizeof(Full) == EventFn::capacity());
    int result = 0;
    Full full{&result, {}};
    full.pad[0] = 42;
    EventFn fn = [full]() { *full.out = full.pad[0]; };
    fn();
    EXPECT_EQ(result, 42);
}

TEST(InlineFn, OversizedCaptureIsRejectedAtCompileTime)
{
    struct Huge {
        char bytes[EventFn::capacity() + 1];
        void operator()() const {}
    };
    static_assert(!std::is_constructible_v<EventFn, Huge>,
                  "a capture one byte over capacity must not convert");
    struct Fits {
        char bytes[EventFn::capacity()];
        void operator()() const {}
    };
    static_assert(std::is_constructible_v<EventFn, Fits>);
    // A wider instantiation accepts what EventFn rejects.
    static_assert(std::is_constructible_v<InlineFn<96>, Huge>);
}

TEST(InlineFn, MoveOnlyCapture)
{
    auto value = std::make_unique<int>(7);
    int seen = 0;
    EventFn fn = [v = std::move(value), &seen]() { seen = *v; };
    EXPECT_FALSE(value);
    fn();
    EXPECT_EQ(seen, 7);
}

TEST(InlineFn, MoveTransfersStateAndEmptiesSource)
{
    int hits = 0;
    EventFn a = [&hits]() { ++hits; };
    EventFn b = std::move(a);
    EXPECT_FALSE(a); // NOLINT: testing the moved-from contract
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);

    EventFn c;
    c = std::move(b);
    EXPECT_FALSE(b); // NOLINT
    ASSERT_TRUE(c);
    c();
    EXPECT_EQ(hits, 2);
}

namespace {

/** Counts live instances through copies/moves/destructions. */
struct Tracker {
    static int live;
    Tracker() { ++live; }
    Tracker(const Tracker &) { ++live; }
    Tracker(Tracker &&) noexcept { ++live; }
    ~Tracker() { --live; }
};
int Tracker::live = 0;

} // namespace

TEST(InlineFn, NonTrivialCaptureIsDestroyedExactlyOnce)
{
    Tracker::live = 0;
    {
        EventFn fn = [t = Tracker()]() { (void)t; };
        EXPECT_EQ(Tracker::live, 1);
        EventFn moved = std::move(fn);
        EXPECT_EQ(Tracker::live, 1);
        moved = nullptr;
        EXPECT_EQ(Tracker::live, 0);
    }
    EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFn, AssignmentReplacesOldCapture)
{
    Tracker::live = 0;
    EventFn fn = [t = Tracker()]() { (void)t; };
    EXPECT_EQ(Tracker::live, 1);
    fn = [t = Tracker(), u = Tracker()]() { (void)t, (void)u; };
    EXPECT_EQ(Tracker::live, 2);
    fn = nullptr;
    EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFn, TriviallyCopyableCaptureSurvivesRelocation)
{
    // The trivially-copyable fast path relocates by memcpy; make sure
    // a full-width payload arrives intact.
    std::array<unsigned char, 48> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<unsigned char>(i * 7 + 1);
    std::array<unsigned char, 48> seen{};
    auto *out = &seen;
    EventFn fn = [payload, out]() { *out = payload; };
    EventFn moved = std::move(fn);
    EventFn again = std::move(moved);
    again();
    EXPECT_EQ(seen, payload);
}
