/**
 * @file
 * Stress and robustness tests: deadlock freedom under minimal
 * flow-control windows, bidirectional message storms, and RMW load
 * broadcasts at cluster scale.
 */

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace press;
using namespace press::core;

namespace {

workload::Trace
stressTrace(std::uint64_t requests)
{
    workload::TraceSpec spec;
    spec.name = "stress";
    spec.numFiles = 300;
    spec.numRequests = requests;
    spec.avgFileSize = 15000;
    spec.seed = 17;
    return workload::generateTrace(spec);
}

} // namespace

/** Deadlock freedom: with the smallest possible windows every request
 *  must still complete, for every version. */
class TinyWindows : public ::testing::TestWithParam<Version>
{
};

TEST_P(TinyWindows, EveryRequestCompletes)
{
    workload::Trace trace = stressTrace(5000);
    PressConfig c;
    c.nodes = 4;
    c.protocol = Protocol::ViaClan;
    c.version = GetParam();
    c.controlWindow = 1;
    c.fileWindow = 1;
    c.controlCreditBatch = 1;
    c.fileCreditBatch = 1;
    c.cacheBytes = 4 * util::MB;
    c.clientsPerNode = 30;
    c.warmupFraction = 0;
    PressCluster cluster(c, trace);
    auto r = cluster.run();
    std::uint64_t replies = 0;
    for (int i = 0; i < c.nodes; ++i)
        replies += cluster.server(i).stats().replies;
    EXPECT_EQ(replies, 5000u);
    EXPECT_TRUE(cluster.simulator().idle());
    EXPECT_GT(r.throughput, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Versions, TinyWindows,
    ::testing::Values(Version::V0, Version::V1, Version::V2,
                      Version::V3, Version::V4, Version::V5),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });

/** Tiny TCP socket buffers must not deadlock either. */
TEST(StressTcp, TinySocketBuffers)
{
    workload::Trace trace = stressTrace(5000);
    PressConfig c;
    c.nodes = 4;
    c.protocol = Protocol::TcpClan;
    c.cacheBytes = 4 * util::MB;
    c.clientsPerNode = 30;
    c.warmupFraction = 0;
    // The mesh is built inside PressCluster with the default sockbuf;
    // heavy bidirectional file traffic exercises the window path.
    PressCluster cluster(c, trace);
    cluster.run();
    std::uint64_t replies = 0;
    for (int i = 0; i < c.nodes; ++i)
        replies += cluster.server(i).stats().replies;
    EXPECT_EQ(replies, 5000u);
    EXPECT_TRUE(cluster.simulator().idle());
}

/** RMW load broadcasts must work inside a full cluster run and stay
 *  cheaper than regular ones. */
TEST(StressRmwLoads, BroadcastRmwCompletesAndHelps)
{
    workload::Trace trace = stressTrace(12000);
    PressConfig reg;
    reg.nodes = 4;
    reg.protocol = Protocol::ViaClan;
    reg.version = Version::V0;
    reg.dissemination = Dissemination::broadcast(1, /*rmw=*/false);
    reg.cacheBytes = 16 * util::MB;
    reg.clientsPerNode = 40;
    PressConfig rmw = reg;
    rmw.dissemination = Dissemination::broadcast(1, /*rmw=*/true);

    auto r_reg = PressCluster(reg, trace).run();
    auto r_rmw = PressCluster(rmw, trace).run();
    // Section 3.3: RMW load broadcasts improve L1 significantly.
    EXPECT_GT(r_rmw.throughput, r_reg.throughput);
    EXPECT_GT(r_rmw.comm.of(MsgKind::Load).msgs, 0u);
}

/** Larger-than-cutoff files mixed into the stream must be served
 *  locally and never transferred intra-cluster. */
TEST(StressLargeFiles, NeverForwarded)
{
    workload::TraceSpec spec;
    spec.numFiles = 50;
    spec.numRequests = 3000;
    spec.avgFileSize = 400000; // many files near/above the 512 KB cutoff
    spec.sizeSigma = 0.8;
    spec.maxFileSize = 4 * 1024 * 1024;
    spec.seed = 23;
    workload::Trace trace = workload::generateTrace(spec);

    PressConfig c;
    c.nodes = 4;
    c.protocol = Protocol::ViaClan;
    c.version = Version::V5;
    c.cacheBytes = 64 * util::MB;
    c.clientsPerNode = 20;
    c.warmupFraction = 0;
    PressCluster cluster(c, trace);
    cluster.run();

    std::uint64_t large = 0, replies = 0;
    for (int i = 0; i < c.nodes; ++i) {
        large += cluster.server(i).stats().largeFileServes;
        replies += cluster.server(i).stats().replies;
    }
    EXPECT_GT(large, 0u);
    EXPECT_EQ(replies, 3000u);
    // No file message may carry >= cutoff bytes.
    double avg_file_msg =
        cluster.comm(0).txStats().of(MsgKind::File).avgSize();
    EXPECT_LT(avg_file_msg, static_cast<double>(c.largeFileCutoff));
}

/** Determinism holds across versions and dissemination strategies. */
TEST(StressDeterminism, RepeatedRunsIdentical)
{
    workload::Trace trace = stressTrace(4000);
    for (auto v : {Version::V0, Version::V5}) {
        PressConfig c;
        c.nodes = 3;
        c.protocol = Protocol::ViaClan;
        c.version = v;
        c.cacheBytes = 8 * util::MB;
        c.clientsPerNode = 25;
        auto a = PressCluster(c, trace).run();
        auto b = PressCluster(c, trace).run();
        EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
        EXPECT_EQ(a.comm.total().bytes, b.comm.total().bytes);
    }
}
