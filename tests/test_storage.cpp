/**
 * @file
 * Tests for the file set and the LRU file cache, including property
 * sweeps over the cache's core invariants.
 */

#include <gtest/gtest.h>

#include "storage/file_cache.hpp"
#include "storage/file_set.hpp"
#include "util/random.hpp"

using press::storage::FileCache;
using press::storage::FileSet;
using press::storage::InvalidFile;

TEST(FileSet, SizesAndTotals)
{
    FileSet fs({100, 200, 300});
    EXPECT_EQ(fs.count(), 3u);
    EXPECT_EQ(fs.size(0), 100u);
    EXPECT_EQ(fs.size(2), 300u);
    EXPECT_EQ(fs.totalBytes(), 600u);
    EXPECT_DOUBLE_EQ(fs.averageSize(), 200.0);
}

TEST(FileSet, AddAssignsSequentialIds)
{
    FileSet fs;
    EXPECT_EQ(fs.add(10), 0u);
    EXPECT_EQ(fs.add(20), 1u);
    EXPECT_EQ(fs.count(), 2u);
}

TEST(FileCache, InsertAndContains)
{
    FileCache c(1000);
    EXPECT_TRUE(c.insert(1, 400).empty());
    EXPECT_TRUE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
    EXPECT_EQ(c.usedBytes(), 400u);
    EXPECT_EQ(c.files(), 1u);
}

TEST(FileCache, EvictsLruOrder)
{
    FileCache c(1000);
    c.insert(1, 400);
    c.insert(2, 400);
    // Touch 1 so that 2 becomes LRU.
    c.touch(1);
    auto ev = c.insert(3, 400);
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].file, 2u);
    EXPECT_EQ(ev[0].size, 400u);
    EXPECT_TRUE(c.contains(1));
    EXPECT_TRUE(c.contains(3));
}

TEST(FileCache, InsertResidentJustTouches)
{
    FileCache c(1000);
    c.insert(1, 400);
    c.insert(2, 400);
    EXPECT_TRUE(c.insert(1, 400).empty()); // refresh, no growth
    EXPECT_EQ(c.usedBytes(), 800u);
    auto ev = c.insert(3, 400);
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].file, 2u); // 1 was refreshed to MRU
}

TEST(FileCache, OversizedFileNeverCached)
{
    FileCache c(1000);
    EXPECT_TRUE(c.insert(1, 2000).empty());
    EXPECT_FALSE(c.contains(1));
    EXPECT_EQ(c.usedBytes(), 0u);
}

TEST(FileCache, MultipleEvictionsForBigInsert)
{
    FileCache c(1000);
    c.insert(1, 300);
    c.insert(2, 300);
    c.insert(3, 300);
    auto ev = c.insert(4, 900);
    EXPECT_EQ(ev.size(), 3u);
    EXPECT_EQ(c.files(), 1u);
    EXPECT_TRUE(c.contains(4));
}

TEST(FileCache, EraseFreesSpace)
{
    FileCache c(1000);
    c.insert(1, 600);
    EXPECT_TRUE(c.erase(1));
    EXPECT_FALSE(c.erase(1));
    EXPECT_EQ(c.usedBytes(), 0u);
    EXPECT_TRUE(c.insert(2, 1000).empty());
}

TEST(FileCache, LruFileReported)
{
    FileCache c(1000);
    EXPECT_EQ(c.lruFile(), InvalidFile);
    c.insert(1, 100);
    c.insert(2, 100);
    EXPECT_EQ(c.lruFile(), 1u);
    c.touch(1);
    EXPECT_EQ(c.lruFile(), 2u);
}

TEST(FileCache, HitMissCounters)
{
    FileCache c(1000);
    c.insert(1, 100);
    c.contains(1);
    c.contains(2);
    c.contains(1);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

/** Property sweep: capacity is never exceeded and accounting stays
 *  consistent under random workloads of varying cache sizes. */
class CacheProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheProperty, InvariantsUnderRandomWorkload)
{
    std::uint64_t capacity = GetParam();
    FileCache c(capacity);
    press::util::Rng rng(capacity);
    std::uint64_t inserted_bytes = 0, evicted_bytes = 0, erased_bytes = 0;

    for (int op = 0; op < 20000; ++op) {
        auto file = static_cast<std::uint32_t>(rng.uniformInt(500));
        auto size = static_cast<std::uint32_t>(rng.uniformInt(300) + 1);
        double action = rng.uniform();
        if (action < 0.7) {
            bool was_in = c.contains(file);
            auto ev = c.insert(file, size);
            if (!was_in && c.contains(file))
                inserted_bytes += size;
            for (auto &e : ev) {
                evicted_bytes += e.size;
                EXPECT_FALSE(c.contains(e.file));
            }
        } else if (action < 0.85) {
            c.touch(file);
        } else {
            if (c.contains(file))
                erased_bytes += 0; // size unknown here; checked below
            c.erase(file);
        }
        ASSERT_LE(c.usedBytes(), capacity);
    }
    // Conservation: what came in either stays, was evicted, or erased.
    EXPECT_GE(inserted_bytes, evicted_bytes);
    EXPECT_LE(c.usedBytes(), inserted_bytes - evicted_bytes);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheProperty,
                         ::testing::Values(500, 2000, 10000, 100000));
