/**
 * @file
 * Tests for VIA memory registration.
 */

#include <gtest/gtest.h>

#include "via/memory.hpp"

using press::via::MemoryRegistry;
using press::via::Payload;

TEST(MemoryRegistry, RegionsDoNotOverlap)
{
    MemoryRegistry reg;
    auto a = reg.registerMemory(10000);
    auto b = reg.registerMemory(5000);
    EXPECT_NE(a.handle, b.handle);
    bool disjoint = a.base + a.size <= b.base || b.base + b.size <= a.base;
    EXPECT_TRUE(disjoint);
}

TEST(MemoryRegistry, FindExactAndInterior)
{
    MemoryRegistry reg;
    auto r = reg.registerMemory(4096);
    EXPECT_TRUE(reg.find(r.base, 4096).has_value());
    EXPECT_TRUE(reg.find(r.base + 100, 1000).has_value());
    EXPECT_FALSE(reg.find(r.base + 100, 4096).has_value()); // runs past
    EXPECT_FALSE(reg.find(r.base - 1, 1).has_value());
    EXPECT_FALSE(reg.find(r.base + 4096, 1).has_value());
}

TEST(MemoryRegistry, DeregisterRemovesRegion)
{
    MemoryRegistry reg;
    auto r = reg.registerMemory(4096);
    EXPECT_TRUE(reg.deregister(r.handle));
    EXPECT_FALSE(reg.find(r.base, 1).has_value());
    EXPECT_FALSE(reg.deregister(r.handle)); // second time fails
    EXPECT_EQ(reg.regions(), 0u);
}

TEST(MemoryRegistry, PinnedBytesArePageRounded)
{
    MemoryRegistry reg;
    reg.registerMemory(1);
    EXPECT_EQ(reg.pinnedBytes(), 4096u);
    auto r = reg.registerMemory(4097);
    EXPECT_EQ(reg.pinnedBytes(), 4096u + 8192u);
    reg.deregister(r.handle);
    EXPECT_EQ(reg.pinnedBytes(), 4096u);
}

TEST(MemoryRegistry, WriteHookFiresWithOffset)
{
    MemoryRegistry reg;
    std::uint64_t seen_offset = 0, seen_len = 0;
    std::uint32_t seen_imm = 0;
    auto r = reg.registerMemory(
        8192, [&](std::uint64_t off, std::uint64_t len, const Payload &,
                  std::uint32_t imm) {
            seen_offset = off;
            seen_len = len;
            seen_imm = imm;
        });
    EXPECT_TRUE(reg.deliverWrite(r.base + 256, 64, nullptr, 77));
    EXPECT_EQ(seen_offset, 256u);
    EXPECT_EQ(seen_len, 64u);
    EXPECT_EQ(seen_imm, 77u);
}

TEST(MemoryRegistry, WriteOutsideRegionsRejected)
{
    MemoryRegistry reg;
    auto r = reg.registerMemory(4096);
    EXPECT_FALSE(reg.deliverWrite(r.base + 4090, 100, nullptr, 0));
    EXPECT_FALSE(reg.deliverWrite(0, 4, nullptr, 0));
}

TEST(MemoryRegistry, HookIsOptional)
{
    MemoryRegistry reg;
    auto r = reg.registerMemory(4096); // no hook
    EXPECT_TRUE(reg.deliverWrite(r.base, 4, nullptr, 0));
}

TEST(MemoryRegistry, ManyRegionsLookup)
{
    MemoryRegistry reg;
    std::vector<press::via::MemoryRegion> regions;
    for (int i = 0; i < 100; ++i)
        regions.push_back(reg.registerMemory(1000 + i));
    for (const auto &r : regions) {
        auto found = reg.find(r.base + 10, 100);
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(found->handle, r.handle);
    }
    EXPECT_EQ(reg.regions(), 100u);
}
