/**
 * @file
 * Integration tests: whole-cluster runs with small workloads, checking
 * conservation laws, determinism, and the paper's qualitative ordering
 * of protocols and versions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace press;
using namespace press::core;

namespace {

workload::Trace
smallTrace(std::uint64_t requests = 30000, std::size_t files = 800)
{
    workload::TraceSpec spec;
    spec.name = "small";
    spec.numFiles = files;
    spec.numRequests = requests;
    spec.avgFileSize = 12000;
    spec.avgRequestSize = 9000;
    spec.seed = 5;
    return workload::generateTrace(spec);
}

PressConfig
smallConfig(Protocol proto, Version v = Version::V0)
{
    PressConfig c;
    c.nodes = 4;
    c.protocol = proto;
    c.version = v;
    c.cacheBytes = 8 * util::MB;
    c.clientsPerNode = 44;
    c.warmupFraction = 0.3;
    return c;
}

} // namespace

TEST(ClusterIntegration, AllRequestsAnswered)
{
    workload::Trace trace = smallTrace(8000);
    PressConfig config = smallConfig(Protocol::ViaClan, Version::V0);
    config.warmupFraction = 0; // count the whole run: exact conservation
    PressCluster cluster(config, trace);
    auto r = cluster.run();
    std::uint64_t requests = 0, replies = 0;
    for (int i = 0; i < config.nodes; ++i) {
        requests += cluster.server(i).stats().requests;
        replies += cluster.server(i).stats().replies;
    }
    // Measured window only counts post-warm-up traffic, but request and
    // reply counts must balance within it (no lost or duplicated work).
    EXPECT_EQ(requests, replies);
    EXPECT_GT(r.throughput, 0);
    EXPECT_GT(r.requestsMeasured, 0u);
    // The simulator drained: every in-flight request completed.
    EXPECT_TRUE(cluster.simulator().idle());
}

TEST(ClusterIntegration, DeterministicAcrossRuns)
{
    workload::Trace trace = smallTrace(6000);
    PressConfig config = smallConfig(Protocol::ViaClan, Version::V3);
    ClusterResults a = PressCluster(config, trace).run();
    ClusterResults b = PressCluster(config, trace).run();
    EXPECT_EQ(a.requestsMeasured, b.requestsMeasured);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.comm.total().msgs, b.comm.total().msgs);
    EXPECT_EQ(a.comm.total().bytes, b.comm.total().bytes);
}

TEST(ClusterIntegration, ForwardsProduceFiles)
{
    workload::Trace trace = smallTrace(10000);
    PressConfig config = smallConfig(Protocol::ViaClan, Version::V0);
    config.warmupFraction = 0;
    PressCluster cluster(config, trace);
    cluster.run();
    std::uint64_t fwd_out = 0, fwd_in = 0;
    for (int i = 0; i < config.nodes; ++i) {
        fwd_out += cluster.server(i).stats().forwardedOut;
        fwd_in += cluster.server(i).stats().forwardedIn;
    }
    EXPECT_EQ(fwd_out, fwd_in);
    EXPECT_GT(fwd_out, 0u);
}

TEST(ClusterIntegration, CpuBreakdownSumsToOne)
{
    workload::Trace trace = smallTrace(8000);
    PressConfig config = smallConfig(Protocol::TcpClan);
    auto r = PressCluster(config, trace).run();
    double sum = 0;
    for (double share : r.cpuShare)
        sum += share;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(r.intraCommShare(), 0.0);
    EXPECT_LT(r.intraCommShare(), 1.0);
}

TEST(ClusterIntegration, ViaBeatsTcpOnClan)
{
    workload::Trace trace = smallTrace();
    auto tcp =
        PressCluster(smallConfig(Protocol::TcpClan), trace).run();
    auto via =
        PressCluster(smallConfig(Protocol::ViaClan), trace).run();
    EXPECT_GT(via.throughput, tcp.throughput);
    // And VIA burns a smaller share of CPU on intra-cluster comm.
    EXPECT_LT(via.intraCommShare(), tcp.intraCommShare());
}

TEST(ClusterIntegration, ZeroCopyVersionsImproveThroughput)
{
    workload::Trace trace = smallTrace();
    auto v0 = PressCluster(smallConfig(Protocol::ViaClan, Version::V0),
                           trace)
                  .run();
    auto v4 = PressCluster(smallConfig(Protocol::ViaClan, Version::V4),
                           trace)
                  .run();
    auto v5 = PressCluster(smallConfig(Protocol::ViaClan, Version::V5),
                           trace)
                  .run();
    EXPECT_GT(v4.throughput, v0.throughput);
    EXPECT_GE(v5.throughput, v4.throughput * 0.98);
    EXPECT_GT(v5.throughput, v0.throughput * 1.02);
}

TEST(ClusterIntegration, RmwFileVersionsDoubleFileMessages)
{
    workload::Trace trace = smallTrace(10000);
    auto v2 = PressCluster(smallConfig(Protocol::ViaClan, Version::V2),
                           trace)
                  .run();
    auto v3 = PressCluster(smallConfig(Protocol::ViaClan, Version::V3),
                           trace)
                  .run();
    double per_file_v2 =
        static_cast<double>(v2.comm.of(MsgKind::File).msgs);
    double per_file_v3 =
        static_cast<double>(v3.comm.of(MsgKind::File).msgs);
    // Table 4: the RMW file scheme sends two messages per file.
    EXPECT_NEAR(per_file_v3 /
                    std::max(1.0, static_cast<double>(
                                      v3.requestsMeasured)) /
                    (per_file_v2 /
                     std::max(1.0, static_cast<double>(
                                       v2.requestsMeasured))),
                2.0, 0.35);
}

TEST(ClusterIntegration, TcpHasNoFlowMessages)
{
    workload::Trace trace = smallTrace(6000);
    auto r = PressCluster(smallConfig(Protocol::TcpClan), trace).run();
    EXPECT_EQ(r.comm.of(MsgKind::Flow).msgs, 0u);
    auto v = PressCluster(smallConfig(Protocol::ViaClan), trace).run();
    EXPECT_GT(v.comm.of(MsgKind::Flow).msgs, 0u);
}

TEST(ClusterIntegration, PiggyBackBeatsAggressiveBroadcast)
{
    workload::Trace trace = smallTrace();
    PressConfig pb = smallConfig(Protocol::ViaClan);
    PressConfig l1 = pb;
    l1.dissemination = Dissemination::broadcast(1);
    auto rpb = PressCluster(pb, trace).run();
    auto rl1 = PressCluster(l1, trace).run();
    // Figure 4: piggy-backing wins, and L1 sends vastly more load
    // messages.
    EXPECT_GT(rpb.throughput, rl1.throughput);
    EXPECT_EQ(rpb.comm.of(MsgKind::Load).msgs, 0u);
    EXPECT_GT(rl1.comm.of(MsgKind::Load).msgs,
              rl1.requestsMeasured);
}

TEST(ClusterIntegration, HigherThresholdFewerLoadMessages)
{
    workload::Trace trace = smallTrace(15000);
    PressConfig base = smallConfig(Protocol::ViaClan);
    std::uint64_t prev = UINT64_MAX;
    for (int threshold : {1, 4, 16}) {
        PressConfig c = base;
        c.dissemination = Dissemination::broadcast(threshold);
        auto r = PressCluster(c, trace).run();
        EXPECT_LT(r.comm.of(MsgKind::Load).msgs, prev);
        prev = r.comm.of(MsgKind::Load).msgs;
    }
}

TEST(ClusterIntegration, SingleNodeClusterWorks)
{
    workload::Trace trace = smallTrace(4000, 300);
    PressConfig c = smallConfig(Protocol::ViaClan, Version::V5);
    c.nodes = 1;
    auto r = PressCluster(c, trace).run();
    EXPECT_GT(r.throughput, 0);
    EXPECT_EQ(r.comm.total().msgs, 0u); // nobody to talk to
    EXPECT_EQ(r.forwardFraction, 0.0);
}

TEST(ClusterIntegration, LatencyReported)
{
    workload::Trace trace = smallTrace(6000);
    auto r = PressCluster(smallConfig(Protocol::ViaClan), trace).run();
    EXPECT_GT(r.avgLatencyMs, 0.1);
    EXPECT_LT(r.avgLatencyMs, 10000.0);
}

/** Property sweep over cluster sizes: conservation + sane throughput
 *  scaling. */
class ClusterSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(ClusterSizes, ConservationAndScaling)
{
    int n = GetParam();
    workload::Trace trace = smallTrace(4000 * n, 600);
    PressConfig c = smallConfig(Protocol::ViaClan, Version::V5);
    c.nodes = n;
    c.warmupFraction = 0;
    PressCluster cluster(c, trace);
    auto r = cluster.run();
    std::uint64_t requests = 0, replies = 0;
    for (int i = 0; i < n; ++i) {
        requests += cluster.server(i).stats().requests;
        replies += cluster.server(i).stats().replies;
    }
    EXPECT_EQ(requests, replies);
    EXPECT_GT(r.throughput, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterSizes,
                         ::testing::Values(1, 2, 4, 8));

TEST(OpenLoop, LowLoadHasLowLatencyAndMatchesOfferedRate)
{
    workload::Trace trace = smallTrace(20000);
    PressConfig c = smallConfig(Protocol::ViaClan, Version::V5);
    c.cacheBytes = 32 * util::MB; // hold the working set: no disk queue
    c.clientMode = PressConfig::ClientMode::OpenLoop;
    c.openLoopRate = 800; // far below capacity
    PressCluster cluster(c, trace);
    auto r = cluster.run();
    // Throughput tracks the offered rate, not the capacity.
    EXPECT_NEAR(r.throughput, 800, 120);
    // Mean latency stays far from saturation levels. (It is not pure
    // service time: Zipf-tail first touches still hit the 20 ms disk
    // during measurement and queue briefly behind each other.)
    EXPECT_LT(r.avgLatencyMs, 100.0);
    EXPECT_TRUE(cluster.simulator().idle());
}

TEST(OpenLoop, EveryArrivalAnswered)
{
    workload::Trace trace = smallTrace(5000);
    PressConfig c = smallConfig(Protocol::TcpClan);
    c.clientMode = PressConfig::ClientMode::OpenLoop;
    c.openLoopRate = 1500;
    c.warmupFraction = 0;
    PressCluster cluster(c, trace);
    cluster.run();
    std::uint64_t replies = 0;
    for (int i = 0; i < c.nodes; ++i)
        replies += cluster.server(i).stats().replies;
    EXPECT_EQ(replies, 5000u);
}

TEST(HttpWire, NoBadRequestsInNormalRuns)
{
    workload::Trace trace = smallTrace(4000);
    PressCluster cluster(smallConfig(Protocol::ViaClan), trace);
    cluster.run();
    EXPECT_EQ(cluster.badRequests(), 0u);
    // The site map resolves every trace file.
    EXPECT_EQ(cluster.siteMap().count(), trace.files.count());
}

TEST(StatsDump, ContainsKeyCounters)
{
    workload::Trace trace = smallTrace(3000);
    PressCluster cluster(smallConfig(Protocol::ViaClan, Version::V5),
                         trace);
    cluster.run();
    std::ostringstream os;
    cluster.dumpStats(os);
    std::string dump = os.str();
    EXPECT_NE(dump.find("node0.cpu.util"), std::string::npos);
    EXPECT_NE(dump.find("node3.press.replies"), std::string::npos);
    EXPECT_NE(dump.find("comm.tx.File.msgs"), std::string::npos);
    EXPECT_NE(dump.find("disk.reads"), std::string::npos);
}

TEST(ClusterIntegration, LatencyPercentilesOrdered)
{
    workload::Trace trace = smallTrace(6000);
    auto r = PressCluster(smallConfig(Protocol::ViaClan), trace).run();
    EXPECT_GT(r.p50LatencyMs, 0.0);
    EXPECT_GE(r.p99LatencyMs, r.p50LatencyMs);
}
