/**
 * @file
 * Tests for check::CausalityChecker: cross-domain scheduling edges must
 * carry at least the declared lookahead, fabric deliveries must respect
 * the unloaded-latency floor, and the measured lookahead table must be
 * a deterministic function of the run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/causality_checker.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

using namespace press;
using check::CausalityChecker;
using check::CausalityViolation;
using check::CheckMode;
using press::util::US;

namespace {

/** Two-domain checker with a 1 us bound each way. */
void
declareTwoDomains(CausalityChecker &checker)
{
    checker.declareDomains(2);
    checker.setDomainLabel(0, "left");
    checker.setDomainLabel(1, "right");
    checker.setBound(0, 1, 1 * US);
    checker.setBound(1, 0, 1 * US);
}

} // namespace

TEST(CausalityChecker, CleanWhenEdgesMeetTheBound)
{
    sim::Simulator sim;
    CausalityChecker checker(sim, CheckMode::Record);
    declareTwoDomains(checker);
    checker.attach();

    sim.setCurrentDomain(0);
    sim.scheduleIn(1, 1 * US, [] {});      // exactly at the bound
    sim.scheduleIn(1, 5 * US, [] {});      // above it
    sim.run();

    EXPECT_TRUE(checker.clean());
    EXPECT_EQ(checker.crossDomainEdges(), 2u);
    EXPECT_EQ(checker.minDelay(0, 1), 1 * US);
    EXPECT_EQ(checker.minDelay(1, 0), -1); // pair never used
}

TEST(CausalityChecker, RecordsABelowLookaheadCrossDomainEdge)
{
    sim::Simulator sim;
    CausalityChecker checker(sim, CheckMode::Record);
    declareTwoDomains(checker);
    checker.attach();

    sim.setCurrentDomain(0);
    sim.schedule(10 * US, [&sim] {
        // A same-tick cross-node mutation: the canonical race a
        // parallel kernel cannot honor.
        sim.scheduleIn(1, 0, [] {});
    });
    sim.run();

    EXPECT_FALSE(checker.clean());
    ASSERT_EQ(checker.totalViolations(), 1u);
    const CausalityViolation &v = checker.violations()[0];
    EXPECT_EQ(v.kind, CausalityViolation::Kind::BelowBound);
    EXPECT_EQ(v.from, 0);
    EXPECT_EQ(v.to, 1);
    EXPECT_EQ(v.tick, 10 * US);
    EXPECT_EQ(v.delay, 0);
    EXPECT_EQ(v.bound, 1 * US);
    EXPECT_NE(v.format().find("below-lookahead"), std::string::npos);
    EXPECT_NE(checker.report().find("left -> right"), std::string::npos);
}

TEST(CausalityChecker, AbortModePanicsOnFirstViolation)
{
    sim::Simulator sim;
    CausalityChecker checker(sim, CheckMode::Abort);
    declareTwoDomains(checker);
    checker.attach();

    sim.setCurrentDomain(0);
    sim.schedule(1 * US, [&sim] { sim.scheduleIn(1, 0, [] {}); });
    EXPECT_DEATH(sim.run(), "below-lookahead");
}

TEST(CausalityChecker, SameDomainAndUntaggedEdgesAreExempt)
{
    sim::Simulator sim;
    CausalityChecker checker(sim, CheckMode::Record);
    declareTwoDomains(checker);
    checker.attach();

    // Untagged setup-time scheduling: no current domain.
    sim.schedule(0, [] {});
    // Same-domain zero-delay chains are the simulator's bread and
    // butter; only cross-domain edges carry a bound.
    sim.setCurrentDomain(0);
    sim.schedule(5 * US, [&sim] { sim.schedule(0, [] {}); });
    sim.run();

    EXPECT_TRUE(checker.clean());
    EXPECT_EQ(checker.crossDomainEdges(), 0u);
    EXPECT_EQ(checker.untaggedEdges(), 1u);
}

TEST(CausalityChecker, RealFabricTrafficMeetsItsOwnWireBound)
{
    sim::Simulator sim;
    net::Fabric fabric(sim, net::FabricConfig::clan(), 2);
    CausalityChecker checker(sim, CheckMode::Abort);
    checker.declareDomains(2);
    checker.setBound(0, 1, fabric.config().wireLatency);
    checker.setBound(1, 0, fabric.config().wireLatency);
    checker.watchFabric(fabric);
    checker.attach();

    sim.setCurrentDomain(0);
    bool delivered = false;
    fabric.send(0, 1, 4096, [&delivered] { delivered = true; });
    sim.run();

    EXPECT_TRUE(delivered);
    EXPECT_TRUE(checker.clean());
    // The wire hop is the only cross-domain edge, at exactly the wire
    // latency: the measured lookahead equals the physical bound.
    EXPECT_EQ(checker.minDelay(0, 1), fabric.config().wireLatency);
    EXPECT_GE(checker.checksPerformed(), 2u); // edge + delivery
}

TEST(CausalityChecker, FlagsADeliveryUnderTheUnloadedLatency)
{
    sim::Simulator sim;
    net::Fabric fabric(sim, net::FabricConfig::clan(), 2);
    CausalityChecker checker(sim, CheckMode::Record);
    checker.declareDomains(2);
    checker.watchFabric(fabric);

    // A real Fabric cannot deliver below its floor (queueing only adds
    // time), so inject the impossible delivery straight into the
    // observer hook: 4 KB "delivered" after a tenth of its unloaded
    // latency.
    const std::uint64_t bytes = 4096;
    const sim::Tick floor = fabric.unloadedLatency(bytes);
    checker.onDeliver(fabric, 0, 1, bytes, 0, floor / 10);

    EXPECT_FALSE(checker.clean());
    ASSERT_EQ(checker.totalViolations(), 1u);
    const CausalityViolation &v = checker.violations()[0];
    EXPECT_EQ(v.kind, CausalityViolation::Kind::FabricBelowFloor);
    EXPECT_EQ(v.delay, floor / 10);
    EXPECT_EQ(v.bound, floor);
}

TEST(CausalityChecker, LookaheadTableIsDeterministic)
{
    auto render = []() {
        sim::Simulator sim;
        net::Fabric fabric(sim, net::FabricConfig::clan(), 2);
        CausalityChecker checker(sim, CheckMode::Record);
        checker.declareDomains(2);
        checker.setBound(0, 1, fabric.config().wireLatency);
        checker.setBound(1, 0, fabric.config().wireLatency);
        checker.watchFabric(fabric);
        checker.attach();
        sim.setCurrentDomain(0);
        fabric.send(0, 1, 1024, [] {});
        fabric.send(0, 1, 8192, [] {});
        sim.run();
        std::ostringstream os;
        checker.writeLookaheadTable(os);
        return os.str();
    };
    std::string a = render();
    std::string b = render();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("d0 -> d1"), std::string::npos);
    EXPECT_NE(a.find("ok"), std::string::npos);
    EXPECT_NE(a.find("fabric cLAN"), std::string::npos);
}

TEST(CausalityChecker, ClearResetsMeasurementsButKeepsBounds)
{
    sim::Simulator sim;
    CausalityChecker checker(sim, CheckMode::Record);
    declareTwoDomains(checker);
    checker.attach();

    sim.setCurrentDomain(0);
    sim.schedule(1 * US, [&sim] { sim.scheduleIn(1, 0, [] {}); });
    sim.run();
    ASSERT_FALSE(checker.clean());

    checker.clear();
    EXPECT_TRUE(checker.clean());
    EXPECT_EQ(checker.crossDomainEdges(), 0u);
    EXPECT_EQ(checker.minDelay(0, 1), -1);
    EXPECT_EQ(checker.bound(0, 1), 1 * US); // bounds survive clear()
}
