/**
 * @file
 * Tests for the Common Log Format importer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/clf.hpp"

using namespace press::workload;

TEST(ClfParse, StandardLine)
{
    auto r = parseClfLine(
        R"(wpbfl2-45.gate.net - - [01/Jul/1995:00:00:06 -0400] "GET /images/ksclogo-medium.gif HTTP/1.0" 200 5866)");
    ASSERT_TRUE(r);
    EXPECT_EQ(r->method, "GET");
    EXPECT_EQ(r->path, "/images/ksclogo-medium.gif");
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->bytes, 5866u);
}

TEST(ClfParse, QueryStringStripped)
{
    auto r = parseClfLine(
        R"(h - - [d] "GET /cgi-bin/search?q=via&x=1 HTTP/1.0" 200 1234)");
    ASSERT_TRUE(r);
    EXPECT_EQ(r->path, "/cgi-bin/search");
}

TEST(ClfParse, MissingProtocolVersionTolerated)
{
    // HTTP/0.9-era logs omit the protocol field.
    auto r = parseClfLine(R"(h - - [d] "GET /index.html" 200 100)");
    ASSERT_TRUE(r);
    EXPECT_EQ(r->path, "/index.html");
    EXPECT_EQ(r->bytes, 100u);
}

TEST(ClfParse, DashBytesMeansZero)
{
    auto r = parseClfLine(R"(h - - [d] "GET /x HTTP/1.0" 304 -)");
    ASSERT_TRUE(r);
    EXPECT_EQ(r->status, 304);
    EXPECT_EQ(r->bytes, 0u);
}

TEST(ClfParse, MalformedLinesRejected)
{
    EXPECT_FALSE(parseClfLine(""));
    EXPECT_FALSE(parseClfLine("no quotes here 200 123"));
    EXPECT_FALSE(parseClfLine(R"(h - - [d] "GET /x HTTP/1.0" abc 12)"));
    EXPECT_FALSE(parseClfLine(R"(h - - [d] "" 200 12)"));
    EXPECT_FALSE(parseClfLine(R"(h - - [d] "GETNOSPACE" 200 12)"));
}

TEST(ClfImport, FiltersLikeThePaper)
{
    std::stringstream log;
    log << R"(a - - [d] "GET /a.html HTTP/1.0" 200 1000)" << "\n"
        << R"(b - - [d] "GET /a.html HTTP/1.0" 200 1000)" << "\n"
        << R"(c - - [d] "GET /b.gif HTTP/1.0" 200 2000)" << "\n"
        << R"(d - - [d] "GET /a.html HTTP/1.0" 304 -)" << "\n"     // drop
        << R"(e - - [d] "POST /cgi HTTP/1.0" 200 10)" << "\n"      // drop
        << R"(f - - [d] "GET /missing HTTP/1.0" 404 200)" << "\n"  // drop
        << "garbage line\n";                                       // bad

    ClfImportStats stats;
    Trace t = importClf(log, "test", &stats);
    EXPECT_EQ(stats.lines, 7u);
    EXPECT_EQ(stats.malformed, 1u);
    EXPECT_EQ(stats.dropped, 3u);
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(t.files.count(), 2u);
    EXPECT_EQ(t.requests.size(), 3u);
    // /a.html requested twice, /b.gif once; sizes as logged.
    EXPECT_EQ(t.files.size(t.requests[0]), 1000u);
    EXPECT_EQ(t.files.size(t.requests[2]), 2000u);
}

TEST(ClfImport, LargestTransferWinsPerPath)
{
    std::stringstream log;
    log << R"(a - - [d] "GET /f HTTP/1.0" 200 500)" << "\n"
        << R"(a - - [d] "GET /f HTTP/1.0" 200 900)" << "\n"
        << R"(a - - [d] "GET /f HTTP/1.0" 200 700)" << "\n";
    Trace t = importClf(log, "t");
    ASSERT_EQ(t.files.count(), 1u);
    EXPECT_EQ(t.files.size(0), 900u);
}

TEST(ClfImport, RoundTripsThroughTraceFormat)
{
    std::stringstream log;
    for (int i = 0; i < 50; ++i)
        log << "h - - [d] \"GET /f" << (i % 7)
            << ".html HTTP/1.0\" 200 " << 1000 + i << "\n";
    Trace t = importClf(log, "rt");
    std::stringstream buf;
    t.save(buf);
    Trace u = Trace::load(buf);
    EXPECT_EQ(u.requests, t.requests);
    EXPECT_EQ(u.files.count(), t.files.count());
}
