/**
 * @file
 * Tests for the HTTP layer: parsing, serialization round-trips, URL
 * handling, MIME mapping, and the site map.
 */

#include <gtest/gtest.h>

#include "http/message.hpp"
#include "http/mime.hpp"
#include "http/url.hpp"
#include "storage/file_set.hpp"
#include "workload/site_map.hpp"

using namespace press::http;

TEST(HttpParse, SimpleGet)
{
    auto r = parseRequest("GET /index.html HTTP/1.0\r\n"
                          "Host: example.org\r\n"
                          "\r\n");
    ASSERT_TRUE(r);
    EXPECT_EQ(r.request->method, Method::Get);
    EXPECT_EQ(r.request->target, "/index.html");
    EXPECT_EQ(r.request->version.major, 1);
    EXPECT_EQ(r.request->version.minor, 0);
    ASSERT_TRUE(r.request->header("host"));
    EXPECT_EQ(*r.request->header("HOST"), "example.org");
    EXPECT_FALSE(r.request->keepAlive()); // 1.0 default
}

TEST(HttpParse, KeepAliveSemantics)
{
    auto v11 = parseRequest("GET / HTTP/1.1\r\nHost: h\r\n\r\n");
    ASSERT_TRUE(v11);
    EXPECT_TRUE(v11.request->keepAlive());
    auto closed = parseRequest(
        "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    ASSERT_TRUE(closed);
    EXPECT_FALSE(closed.request->keepAlive());
    auto ka10 = parseRequest(
        "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    ASSERT_TRUE(ka10);
    EXPECT_TRUE(ka10.request->keepAlive());
}

TEST(HttpParse, BareLfAccepted)
{
    auto r = parseRequest("GET /a HTTP/1.1\nHost: h\n\n");
    ASSERT_TRUE(r);
    EXPECT_EQ(r.request->target, "/a");
}

TEST(HttpParse, Errors)
{
    EXPECT_EQ(*parseRequest("GARBAGE\r\n\r\n").error,
              ParseError::BadRequestLine);
    EXPECT_EQ(*parseRequest("GET /x HTTQ/9\r\n\r\n").error,
              ParseError::BadVersion);
    EXPECT_EQ(*parseRequest("GET /x HTTP/1.1\r\nNoColon\r\n\r\n").error,
              ParseError::BadHeader);
    EXPECT_EQ(*parseRequest("GET /x HTTP/1.1\r\nHost: h\r\n").error,
              ParseError::IncompleteInput);
    EXPECT_EQ(*parseRequest("").error, ParseError::IncompleteInput);
}

TEST(HttpParse, UnknownMethodSurvives)
{
    auto r = parseRequest("BREW /pot HTTP/1.1\r\n\r\n");
    ASSERT_TRUE(r);
    EXPECT_EQ(r.request->method, Method::Unknown);
}

TEST(HttpRoundTrip, SerializeThenParse)
{
    Request get = makeGet("/docs/a.html", "press.cluster");
    auto parsed = parseRequest(get.serialize());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed.request->target, "/docs/a.html");
    EXPECT_EQ(*parsed.request->header("Host"), "press.cluster");
    EXPECT_TRUE(parsed.request->keepAlive());
}

TEST(HttpResponse, FileResponseShape)
{
    Response r = makeFileResponse(200, 12345, "text/html", true);
    std::string head = r.serializeHead();
    EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(head.find("Content-Length: 12345"), std::string::npos);
    EXPECT_NE(head.find("Content-Type: text/html"), std::string::npos);
    EXPECT_EQ(r.wireBytes(), head.size() + 12345);
}

TEST(HttpResponse, ErrorStatusHasNoBody)
{
    Response r = makeFileResponse(404, 999, "text/html", false);
    EXPECT_EQ(r.contentLength, 0u);
    EXPECT_NE(r.serializeHead().find("404 Not Found"),
              std::string::npos);
}

TEST(Url, PercentDecode)
{
    EXPECT_EQ(*percentDecode("/a%20b"), "/a b");
    EXPECT_EQ(*percentDecode("/%41%42"), "/AB");
    EXPECT_EQ(*percentDecode("plain"), "plain");
    EXPECT_EQ(*percentDecode("a+b"), "a b");
    EXPECT_FALSE(percentDecode("/bad%g1"));
    EXPECT_FALSE(percentDecode("/trunc%4"));
}

TEST(Url, NormalizePath)
{
    EXPECT_EQ(*normalizePath("/a/b/c"), "/a/b/c");
    EXPECT_EQ(*normalizePath("//a///b"), "/a/b");
    EXPECT_EQ(*normalizePath("/a/./b"), "/a/b");
    EXPECT_EQ(*normalizePath("/a/x/../b"), "/a/b");
    EXPECT_EQ(*normalizePath("/"), "/");
    // Traversal out of the root must be rejected.
    EXPECT_FALSE(normalizePath("/../etc/passwd"));
    EXPECT_FALSE(normalizePath("/a/../../b"));
}

TEST(Url, SplitTarget)
{
    auto t = splitTarget("/search/doc.html?q=via&x=1");
    ASSERT_TRUE(t);
    EXPECT_EQ(t->path, "/search/doc.html");
    EXPECT_EQ(t->query, "q=via&x=1");
    EXPECT_FALSE(splitTarget("no-leading-slash"));
    EXPECT_FALSE(splitTarget(""));
    EXPECT_FALSE(splitTarget("/%zz"));
}

TEST(Mime, KnownAndUnknown)
{
    EXPECT_EQ(mimeType("/a/b.html"), "text/html");
    EXPECT_EQ(mimeType("/x.GIF"), "image/gif");
    EXPECT_EQ(mimeType("/x.jpeg"), "image/jpeg");
    EXPECT_EQ(mimeType("/noext"), "application/octet-stream");
    EXPECT_EQ(mimeType("/odd.xyz"), "application/octet-stream");
}

TEST(SiteMap, PathsUniqueAndResolvable)
{
    press::storage::FileSet files(
        std::vector<std::uint32_t>(5000, 1000));
    press::workload::SiteMap site(files);
    EXPECT_EQ(site.count(), 5000u);
    for (press::storage::FileId f = 0; f < 5000; f += 97) {
        const std::string &p = site.path(f);
        EXPECT_EQ(p.front(), '/');
        auto back = site.resolve(p);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, f);
    }
    EXPECT_FALSE(site.resolve("/definitely/not/there.html"));
}

TEST(SiteMap, DeterministicForSeed)
{
    press::storage::FileSet files(std::vector<std::uint32_t>(100, 1));
    press::workload::SiteMap a(files, 7), b(files, 7), c(files, 8);
    EXPECT_EQ(a.path(42), b.path(42));
    EXPECT_NE(a.path(42), c.path(42));
}

TEST(SiteMap, PathsSurviveHttpPipeline)
{
    // Every generated path must round-trip through request building,
    // parsing, target splitting and resolution.
    press::storage::FileSet files(
        std::vector<std::uint32_t>(200, 10));
    press::workload::SiteMap site(files);
    for (press::storage::FileId f = 0; f < 200; ++f) {
        Request get = makeGet(site.path(f), "h");
        auto parsed = parseRequest(get.serialize());
        ASSERT_TRUE(parsed);
        auto split = splitTarget(parsed.request->target);
        ASSERT_TRUE(split);
        auto resolved = site.resolve(split->path);
        ASSERT_TRUE(resolved);
        EXPECT_EQ(*resolved, f);
    }
}
