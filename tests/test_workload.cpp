/**
 * @file
 * Tests for trace generation and replay: Table 1 fidelity, save/load
 * round-trips, and the request feed.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "storage/file_cache.hpp"
#include "workload/trace.hpp"
#include "workload/stack_distance.hpp"
#include "workload/trace_gen.hpp"

using namespace press::workload;
using press::storage::InvalidFile;

TEST(TraceGen, MatchesSpecCounts)
{
    TraceSpec spec;
    spec.numFiles = 500;
    spec.numRequests = 20000;
    spec.avgFileSize = 10000;
    Trace t = generateTrace(spec);
    EXPECT_EQ(t.files.count(), 500u);
    EXPECT_EQ(t.requests.size(), 20000u);
    EXPECT_NEAR(t.files.averageSize(), 10000.0, 500.0);
}

TEST(TraceGen, DeterministicForSeed)
{
    TraceSpec spec;
    spec.numFiles = 100;
    spec.numRequests = 5000;
    Trace a = generateTrace(spec);
    Trace b = generateTrace(spec);
    EXPECT_EQ(a.requests, b.requests);
    spec.seed += 1;
    Trace c = generateTrace(spec);
    EXPECT_NE(a.requests, c.requests);
}

TEST(TraceGen, TargetsAverageRequestSize)
{
    TraceSpec spec;
    spec.numFiles = 2000;
    spec.numRequests = 100000;
    spec.avgFileSize = 20000;
    spec.avgRequestSize = 10000; // popular files smaller
    Trace t = generateTrace(spec);
    EXPECT_NEAR(t.averageRequestSize(), 10000.0, 1500.0);
}

TEST(TraceGen, PopularityIsSkewed)
{
    TraceSpec spec;
    spec.numFiles = 1000;
    spec.numRequests = 100000;
    Trace t = generateTrace(spec);
    std::vector<int> counts(1000, 0);
    for (auto f : t.requests)
        ++counts[f];
    std::sort(counts.rbegin(), counts.rend());
    int top100 = 0;
    for (int i = 0; i < 100; ++i)
        top100 += counts[i];
    // Zipf(0.8) over 1000 files: the top decile draws far more than 10%.
    EXPECT_GT(top100, 30000);
}

/** Table 1 fidelity, parameterized over the four paper traces. */
class PaperTrace : public ::testing::TestWithParam<int>
{
};

TEST_P(PaperTrace, MatchesTable1)
{
    TraceSpec spec = paperTraceSpecs()[GetParam()];
    // Scale requests down for test speed; file population stays full.
    TraceSpec scaled = spec.scaled(0.05);
    Trace t = generateTrace(scaled);
    EXPECT_EQ(t.files.count(), spec.numFiles);
    // Average file size within 5% of Table 1.
    EXPECT_NEAR(t.files.averageSize() / spec.avgFileSize, 1.0, 0.05);
    // Average requested size within 15% (it is a stochastic target).
    EXPECT_NEAR(t.averageRequestSize() / spec.avgRequestSize, 1.0, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Table1, PaperTrace,
                         ::testing::Values(0, 1, 2, 3));

TEST(Trace, SaveLoadRoundTrip)
{
    TraceSpec spec;
    spec.numFiles = 50;
    spec.numRequests = 500;
    Trace t = generateTrace(spec);
    std::stringstream ss;
    t.save(ss);
    Trace u = Trace::load(ss);
    EXPECT_EQ(u.name, t.name);
    EXPECT_EQ(u.files.count(), t.files.count());
    EXPECT_EQ(u.requests, t.requests);
    for (std::size_t i = 0; i < t.files.count(); ++i)
        EXPECT_EQ(u.files.size(i), t.files.size(i));
}

TEST(RequestFeed, OnePassByDefault)
{
    Trace t;
    t.files = press::storage::FileSet({10, 20, 30});
    t.requests = {0, 1, 2};
    RequestFeed feed(t);
    EXPECT_EQ(feed.next(), 0u);
    EXPECT_EQ(feed.next(), 1u);
    EXPECT_EQ(feed.next(), 2u);
    EXPECT_EQ(feed.next(), InvalidFile);
    EXPECT_TRUE(feed.exhausted());
    EXPECT_EQ(feed.issued(), 3u);
}

TEST(RequestFeed, LimitTruncates)
{
    Trace t;
    t.files = press::storage::FileSet({10});
    t.requests = {0, 0, 0, 0, 0};
    RequestFeed feed(t, 2);
    EXPECT_EQ(feed.next(), 0u);
    EXPECT_EQ(feed.next(), 0u);
    EXPECT_EQ(feed.next(), InvalidFile);
}

TEST(RequestFeed, WrapRepeats)
{
    Trace t;
    t.files = press::storage::FileSet({10, 20});
    t.requests = {0, 1};
    RequestFeed feed(t, 5, true);
    std::vector<press::storage::FileId> got;
    for (int i = 0; i < 6; ++i)
        got.push_back(feed.next());
    EXPECT_EQ(got, (std::vector<press::storage::FileId>{0, 1, 0, 1, 0,
                                                        InvalidFile}));
}

TEST(Trace, RequestedBytes)
{
    Trace t;
    t.files = press::storage::FileSet({10, 20});
    t.requests = {0, 1, 1};
    EXPECT_EQ(t.requestedBytes(), 50u);
    EXPECT_NEAR(t.averageRequestSize(), 50.0 / 3.0, 1e-9);
}

TEST(TraceGen, TemporalLocalityRaisesLruHitRate)
{
    TraceSpec base;
    base.numFiles = 5000;
    base.numRequests = 60000;
    base.zipfAlpha = 0.5; // weak popularity so the temporal knob shows
    TraceSpec warm = base;
    warm.temporalLocality = 0.6;
    warm.temporalWindow = 200;

    auto lru_hits = [](const Trace &t) {
        press::storage::FileCache cache(300ull * 20000); // ~300 files
        std::uint64_t hits = 0;
        for (auto f : t.requests) {
            if (cache.contains(f)) {
                ++hits;
                cache.touch(f);
            } else {
                cache.insert(f, 20000);
            }
        }
        return hits;
    };
    std::uint64_t cold = lru_hits(generateTrace(base));
    std::uint64_t hot = lru_hits(generateTrace(warm));
    EXPECT_GT(hot, cold + cold / 2); // at least 1.5x the hits
}

TEST(TraceGen, TemporalLocalityKeepsCounts)
{
    TraceSpec spec;
    spec.numFiles = 100;
    spec.numRequests = 5000;
    spec.temporalLocality = 0.9;
    Trace t = generateTrace(spec);
    EXPECT_EQ(t.requests.size(), 5000u);
    for (auto f : t.requests)
        ASSERT_LT(f, 100u);
}

TEST(StackDistance, AgreesWithDirectLruSimulation)
{
    TraceSpec spec;
    spec.numFiles = 400;
    spec.numRequests = 30000;
    spec.avgFileSize = 8000;
    spec.seed = 77;
    Trace t = generateTrace(spec);
    auto curve = analyzeStackDistances(t);
    EXPECT_EQ(curve.accesses, t.requests.size());

    for (std::uint64_t cap : {200000ull, 800000ull, 2000000ull}) {
        // Direct LRU byte-capacity simulation.
        press::storage::FileCache cache(cap);
        std::uint64_t misses = 0;
        for (auto f : t.requests) {
            if (cache.contains(f)) {
                cache.touch(f);
            } else {
                ++misses;
                cache.insert(f, t.files.size(f));
            }
        }
        double direct =
            static_cast<double>(misses) / t.requests.size();
        double predicted = curve.missRatio(cap);
        // The byte-LRU stack distance is an approximation of the
        // variable-size LRU cache; they track within a few percent.
        EXPECT_NEAR(predicted, direct, 0.05)
            << "capacity " << cap;
    }
}

TEST(StackDistance, ColdMissesEqualDistinctFiles)
{
    Trace t;
    t.files = press::storage::FileSet({100, 200, 300});
    t.requests = {0, 1, 2, 0, 1, 2, 0};
    auto curve = analyzeStackDistances(t);
    EXPECT_EQ(curve.coldMisses, 3u);
    EXPECT_EQ(curve.accesses, 7u);
    // With an infinite cache only the cold misses remain.
    EXPECT_NEAR(curve.missRatio(UINT64_MAX / 2), 3.0 / 7.0, 1e-9);
    // A cache too small for even one reuse misses everything.
    EXPECT_NEAR(curve.missRatio(1), 1.0, 1e-9);
}

TEST(StackDistance, CapacityForMissRatioMonotone)
{
    TraceSpec spec;
    spec.numFiles = 300;
    spec.numRequests = 20000;
    Trace t = generateTrace(spec);
    auto curve = analyzeStackDistances(t);
    std::uint64_t c30 = curve.capacityForMissRatio(0.30);
    std::uint64_t c10 = curve.capacityForMissRatio(0.10);
    EXPECT_GT(c10, c30); // tighter target needs a bigger cache
    double cold = static_cast<double>(curve.coldMisses) / curve.accesses;
    EXPECT_EQ(curve.capacityForMissRatio(cold / 2), 0u);
}
