/**
 * @file
 * Tests for the switched-fabric model: latency arithmetic, per-port
 * serialization/contention, statistics, and the Section 3.2
 * microbenchmark anchors.
 */

#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "util/units.hpp"

using press::net::Fabric;
using press::net::FabricConfig;
using press::sim::Simulator;
using press::sim::Tick;
using namespace press::util;

TEST(Fabric, UnloadedLatencyMatchesConfig)
{
    Simulator sim;
    FabricConfig cfg;
    cfg.name = "test";
    cfg.bandwidth = 100 * MB;
    cfg.txOverhead = 2 * US;
    cfg.rxOverhead = 3 * US;
    cfg.wireLatency = 5 * US;
    Fabric f(sim, cfg, 2);

    // 1000 bytes at 100 MB/s = 10 us serialization each end.
    EXPECT_EQ(f.txTime(1000), 2 * US + 10 * US);
    EXPECT_EQ(f.rxTime(1000), 3 * US + 10 * US);
    EXPECT_EQ(f.unloadedLatency(1000), 30 * US);

    Tick arrived = -1;
    f.send(0, 1, 1000, [&] { arrived = sim.now(); });
    sim.run();
    EXPECT_EQ(arrived, 30 * US);
}

TEST(Fabric, TxDoneFiresBeforeDelivery)
{
    Simulator sim;
    Fabric f(sim, FabricConfig::clan(), 2);
    Tick tx = -1, rx = -1;
    f.send(0, 1, 32000, [&] { rx = sim.now(); }, [&] { tx = sim.now(); });
    sim.run();
    EXPECT_GT(tx, 0);
    EXPECT_GT(rx, tx);
}

TEST(Fabric, SenderPortSerializes)
{
    Simulator sim;
    FabricConfig cfg;
    cfg.name = "t";
    cfg.bandwidth = 1 * MB; // 1 us per byte: easy math
    cfg.txOverhead = 0;
    cfg.rxOverhead = 0;
    cfg.wireLatency = 0;
    Fabric f(sim, cfg, 3);
    std::vector<Tick> arrivals;
    // Two back-to-back 1000-byte messages from port 0 to distinct
    // destinations must serialize at the sender.
    f.send(0, 1, 1000, [&] { arrivals.push_back(sim.now()); });
    f.send(0, 2, 1000, [&] { arrivals.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], 2 * MS);     // tx 1ms + rx 1ms
    EXPECT_EQ(arrivals[1], 3 * MS);     // waited 1ms behind the first
}

TEST(Fabric, ReceiverPortSerializes)
{
    Simulator sim;
    FabricConfig cfg;
    cfg.name = "t";
    cfg.bandwidth = 1 * MB;
    cfg.txOverhead = 0;
    cfg.rxOverhead = 0;
    cfg.wireLatency = 0;
    Fabric f(sim, cfg, 3);
    std::vector<Tick> arrivals;
    // Two senders target port 2 simultaneously: their RX phases queue.
    f.send(0, 2, 1000, [&] { arrivals.push_back(sim.now()); });
    f.send(1, 2, 1000, [&] { arrivals.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], 2 * MS);
    EXPECT_EQ(arrivals[1], 3 * MS);
}

TEST(Fabric, LoopbackSkipsWire)
{
    Simulator sim;
    Fabric f(sim, FabricConfig::clan(), 2);
    Tick arrived = -1;
    f.send(1, 1, 1000, [&] { arrived = sim.now(); });
    sim.run();
    EXPECT_EQ(arrived, f.txTime(1000));
    EXPECT_EQ(f.stats(1).messagesSent, 1u);
    EXPECT_EQ(f.stats(1).messagesReceived, 1u);
}

TEST(Fabric, StatsCountMessagesAndBytes)
{
    Simulator sim;
    Fabric f(sim, FabricConfig::fastEthernet(), 4);
    f.send(0, 1, 500, {});
    f.send(0, 2, 700, {});
    f.send(3, 0, 100, {});
    sim.run();
    EXPECT_EQ(f.stats(0).messagesSent, 2u);
    EXPECT_EQ(f.stats(0).bytesSent, 1200u);
    EXPECT_EQ(f.stats(0).messagesReceived, 1u);
    EXPECT_EQ(f.stats(1).bytesReceived, 500u);
    f.resetStats();
    EXPECT_EQ(f.stats(0).messagesSent, 0u);
}

TEST(Fabric, PaperAnchorClanBandwidth)
{
    // Section 3.2: VIA/cLAN peaks at ~102 MB/s for 32 KB messages. The
    // wire share of a 32 KB transfer must let that through.
    Simulator sim;
    Fabric f(sim, FabricConfig::clan(), 2);
    // Streamed bandwidth is limited by the per-port serialization time.
    double secs = press::sim::nsToSeconds(f.txTime(32000));
    double bw = 32000.0 / secs;
    EXPECT_GT(bw, 95e6);
    EXPECT_LT(bw, 112e6);
}

TEST(Fabric, PaperAnchorFastEthernetBandwidth)
{
    // Section 3.2: TCP/FE observes 11.5 MB/s for 32 KB messages
    // (wire-limited).
    Simulator sim;
    Fabric f(sim, FabricConfig::fastEthernet(), 2);
    double secs = press::sim::nsToSeconds(f.txTime(32000));
    double bw = 32000.0 / secs;
    EXPECT_GT(bw, 10.5e6);
    EXPECT_LT(bw, 12.5e6);
}

TEST(Fabric, ZeroByteMessageStillCostsOverhead)
{
    Simulator sim;
    Fabric f(sim, FabricConfig::clan(), 2);
    EXPECT_EQ(f.txTime(0), FabricConfig::clan().txOverhead);
}
