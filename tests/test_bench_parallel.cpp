/**
 * @file
 * Tests for the bench harness's ParallelRunner: a sweep must produce
 * byte-identical results whatever the worker count, because every cell
 * runs in its own Simulator/PressCluster with RNGs seeded from its own
 * config. Exact EXPECT_EQ on doubles is deliberate — "close" would
 * hide an ordering leak between cells.
 */

#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "core/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace press;
using bench::Cell;
using bench::Options;
using bench::ParallelRunner;

namespace {

workload::Trace
smallTrace()
{
    auto spec = workload::clarknetSpec();
    spec.numRequests = 6000;
    return workload::generateTrace(spec);
}

/** The quick Figure 5 grid: one trace, a spread of VIA versions. */
std::vector<core::ClusterResults>
runGrid(const workload::Trace &trace, int jobs,
        core::ViaCheck check = core::ViaCheck::Off)
{
    Options opts;
    opts.nodes = 4;
    opts.jobs = jobs;
    ParallelRunner runner(opts);
    for (auto v :
         {core::Version::V0, core::Version::V3, core::Version::V5}) {
        Cell cell;
        cell.trace = &trace;
        cell.config.protocol = core::Protocol::ViaClan;
        cell.config.version = v;
        cell.config.viaCheck = check;
        cell.maxRequests = 4000;
        runner.add(std::move(cell));
    }
    return runner.run();
}

void
expectIdentical(const core::ClusterResults &a,
                const core::ClusterResults &b)
{
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.avgLatencyMs, b.avgLatencyMs);
    EXPECT_EQ(a.p50LatencyMs, b.p50LatencyMs);
    EXPECT_EQ(a.p99LatencyMs, b.p99LatencyMs);
    EXPECT_EQ(a.requestsMeasured, b.requestsMeasured);
    EXPECT_EQ(a.measuredSeconds, b.measuredSeconds);
    EXPECT_EQ(a.forwardFraction, b.forwardFraction);
    EXPECT_EQ(a.localHitFraction, b.localHitFraction);
    EXPECT_EQ(a.diskReads, b.diskReads);
    EXPECT_EQ(a.cacheInsertions, b.cacheInsertions);
    EXPECT_EQ(a.cpuUtilization, b.cpuUtilization);
    EXPECT_EQ(a.diskUtilization, b.diskUtilization);
    EXPECT_EQ(a.comm.total().msgs, b.comm.total().msgs);
    EXPECT_EQ(a.comm.total().bytes, b.comm.total().bytes);
}

} // namespace

TEST(ParallelRunner, FourJobsMatchOneJobExactly)
{
    auto trace = smallTrace();
    auto sequential = runGrid(trace, 1);
    auto parallel = runGrid(trace, 4);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdentical(sequential[i], parallel[i]);
    }
}

TEST(ParallelRunner, ResultsLandAtAddIndex)
{
    auto trace = smallTrace();
    auto results = runGrid(trace, 4);
    ASSERT_EQ(results.size(), 3u);
    // V0 transfers whole files over the regular channel; V5 uses RMW
    // with per-slot acks. Distinct message mixes prove the results were
    // not permuted by completion order.
    EXPECT_NE(results[0].comm.total().msgs, results[2].comm.total().msgs);
    for (const auto &r : results)
        EXPECT_GT(r.throughput, 0.0);
}

TEST(ParallelRunner, ViaCheckerCleanPerCellUnderParallelism)
{
    // Abort mode panics on any VIA invariant violation; each cell owns
    // a checker, so four concurrent checked clusters must coexist.
    auto trace = smallTrace();
    auto checked = runGrid(trace, 4, core::ViaCheck::Abort);
    ASSERT_EQ(checked.size(), 3u);
    // The checker observes without perturbing: results must equal the
    // unchecked grid bit for bit.
    auto plain = runGrid(trace, 1);
    for (std::size_t i = 0; i < checked.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdentical(checked[i], plain[i]);
    }
}

TEST(TraceSet, ParallelGenerationIsDeterministic)
{
    Options seq;
    seq.maxRequests = 3000;
    seq.jobs = 1;
    Options par = seq;
    par.jobs = 4;
    bench::TraceSet a(seq), b(par);
    ASSERT_EQ(a.all().size(), b.all().size());
    for (std::size_t i = 0; i < a.all().size(); ++i) {
        EXPECT_EQ(a.all()[i].name, b.all()[i].name);
        EXPECT_EQ(a.all()[i].requests, b.all()[i].requests);
    }
}
