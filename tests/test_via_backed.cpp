/**
 * @file
 * Byte-exact data transfer through backed VIA regions: the library-level
 * usage mode where registered memory owns real storage and DMA moves
 * actual bytes. Includes a miniature version of PRESS's remote-write
 * ring protocol (sequence number stored at the end of each fixed-size
 * slot) to show the receiver-side polling discipline working on real
 * data.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "via/via_nic.hpp"

using namespace press;
using via::Address;
using via::MemoryRegistry;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 7);
    return v;
}

struct Rig {
    sim::Simulator sim;
    net::Fabric fabric{sim, net::FabricConfig::clan(), 2};
    via::ViaNic nicA{sim, fabric, 0};
    via::ViaNic nicB{sim, fabric, 1};
    via::VirtualInterface *va = nullptr;
    via::VirtualInterface *vb = nullptr;

    Rig()
    {
        va = nicA.createVi(via::Reliability::ReliableDelivery);
        vb = nicB.createVi(via::Reliability::ReliableDelivery);
        via::ViaNic::connect(*va, *vb);
    }
};

} // namespace

TEST(BackedMemory, StoreFetchRoundTrip)
{
    MemoryRegistry reg;
    auto r = reg.registerBacked(4096);
    EXPECT_TRUE(reg.isBacked(r.base));
    auto data = pattern(256, 3);
    reg.store(r.base + 100, data);
    EXPECT_EQ(reg.fetch(r.base + 100, 256), data);
    // Fresh regions read back zeroed.
    EXPECT_EQ(reg.fetch(r.base, 4)[0], 0);
}

TEST(BackedMemory, PlainRegionRejectsAccess)
{
    MemoryRegistry reg;
    auto r = reg.registerMemory(4096);
    EXPECT_FALSE(reg.isBacked(r.base));
    auto data = pattern(8, 1);
    EXPECT_DEATH(reg.store(r.base, data), "unbacked");
}

TEST(BackedMemory, SendMovesRealBytes)
{
    Rig rig;
    auto src = rig.nicA.registerBacked(8192);
    auto dst = rig.nicB.registerBacked(8192);
    auto data = pattern(1000, 42);
    rig.nicA.memory().store(src.base + 8, data);

    rig.vb->postRecv(via::makeRecv(dst.base + 16, 4096));
    rig.va->postSend(via::makeSend(src.base + 8, 1000));
    rig.sim.run();

    auto got = rig.vb->pollRecv();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->status, via::Status::Complete);
    EXPECT_EQ(rig.nicB.memory().fetch(dst.base + 16, 1000), data);
}

TEST(BackedMemory, RdmaWriteMovesRealBytes)
{
    Rig rig;
    auto src = rig.nicA.registerBacked(8192);
    auto dst = rig.nicB.registerBacked(8192);
    auto data = pattern(512, 9);
    rig.nicA.memory().store(src.base, data);

    rig.va->postSend(via::makeRdmaWrite(src.base, 512, dst.base + 1024));
    rig.sim.run();

    EXPECT_EQ(rig.nicB.memory().fetch(dst.base + 1024, 512), data);
    // Bytes outside the written range stay zero.
    EXPECT_EQ(rig.nicB.memory().fetch(dst.base + 1023, 1)[0], 0);
}

TEST(BackedMemory, MixedBackedPlainSkipsCopy)
{
    Rig rig;
    auto src = rig.nicA.registerMemory(4096); // plain
    auto dst = rig.nicB.registerBacked(4096);
    rig.va->postSend(via::makeRdmaWrite(src.base, 64, dst.base));
    rig.sim.run();
    // Transfer succeeded (metadata-level), destination bytes untouched.
    EXPECT_EQ(rig.nicB.memory().fetch(dst.base, 64),
              std::vector<std::uint8_t>(64, 0));
}

/**
 * PRESS's RMW ring discipline on real bytes: fixed-size slots, payload
 * first, sequence number in the slot's last 4 bytes. Because VIA
 * delivers in order on one VI, a reader that sees seq == expected can
 * trust the payload bytes before it.
 */
TEST(BackedMemory, SequenceNumberRingProtocol)
{
    constexpr std::uint64_t SlotBytes = 64;
    constexpr int Slots = 4;
    Rig rig;
    auto src = rig.nicA.registerBacked(SlotBytes);
    int writes_seen = 0;
    auto ring = rig.nicB.registerBacked(
        SlotBytes * Slots,
        [&](std::uint64_t, std::uint64_t, const via::Payload &,
            std::uint32_t) { ++writes_seen; });

    auto write_slot = [&](std::uint32_t seq, std::uint8_t fill) {
        std::vector<std::uint8_t> slot(SlotBytes, fill);
        std::memcpy(slot.data() + SlotBytes - 4, &seq, 4);
        rig.nicA.memory().store(src.base, slot);
        Address target = ring.base + (seq % Slots) * SlotBytes;
        rig.va->postSend(
            via::makeRdmaWrite(src.base, SlotBytes, target));
        rig.sim.run();
    };

    for (std::uint32_t seq = 0; seq < 10; ++seq) {
        write_slot(seq, static_cast<std::uint8_t>(0xA0 + seq));
        // Reader side: poll the expected slot's sequence word.
        Address slot_addr = ring.base + (seq % Slots) * SlotBytes;
        auto raw =
            rig.nicB.memory().fetch(slot_addr + SlotBytes - 4, 4);
        std::uint32_t got_seq;
        std::memcpy(&got_seq, raw.data(), 4);
        ASSERT_EQ(got_seq, seq);
        // Payload bytes are the ones written with that sequence.
        EXPECT_EQ(rig.nicB.memory().fetch(slot_addr, 1)[0],
                  static_cast<std::uint8_t>(0xA0 + seq));
    }
    EXPECT_EQ(writes_seen, 10);
}

TEST(BackedMemory, OverwriteSemanticsOfRmwWords)
{
    // Flow-control words may be overwritten freely: the last write
    // wins, exactly like real memory.
    Rig rig;
    auto src = rig.nicA.registerBacked(64);
    auto word = rig.nicB.registerBacked(64);
    for (std::uint8_t v : {1, 2, 3}) {
        rig.nicA.memory().store(src.base, std::vector<std::uint8_t>{v});
        rig.va->postSend(via::makeRdmaWrite(src.base, 1, word.base));
    }
    rig.sim.run();
    EXPECT_EQ(rig.nicB.memory().fetch(word.base, 1)[0], 3);
}
