/**
 * @file
 * Tests of check::ViaChecker, the VIA protocol-invariant checker.
 *
 * One test per violation class seeds exactly that violation and asserts
 * it is detected with the right structured kind; the clean-run tests
 * prove the checker reports nothing on legal traffic, including a full
 * PRESS cluster simulation at every server version.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/via_checker.hpp"
#include "core/cluster.hpp"
#include "core/credit_gate.hpp"
#include "via/via_nic.hpp"
#include "workload/trace_gen.hpp"

using namespace press;
using check::CheckMode;
using check::ViaChecker;
using check::Violation;

namespace {

/** Two checked NICs on a cLAN fabric with a connected reliable VI pair. */
struct Harness {
    sim::Simulator sim;
    net::Fabric fabric{sim, net::FabricConfig::clan(), 2};
    via::ViaNic nicA{sim, fabric, 0};
    via::ViaNic nicB{sim, fabric, 1};
    ViaChecker checker;

    explicit Harness(CheckMode mode = CheckMode::Record)
        : checker(sim, mode)
    {
        checker.attachNic(nicA);
        checker.attachNic(nicB);
    }

    via::VirtualInterface *
    pair(via::VirtualInterface **other = nullptr,
         via::CompletionQueue *recv_cq = nullptr)
    {
        auto *va = nicA.createVi(via::Reliability::ReliableDelivery);
        auto *vb =
            nicB.createVi(via::Reliability::ReliableDelivery, nullptr,
                          recv_cq);
        via::ViaNic::connect(*va, *vb);
        if (other)
            *other = vb;
        return va;
    }
};

} // namespace

// ---------------------------------------------------------------------
// Seeded violations: each class must be detected
// ---------------------------------------------------------------------

TEST(ViaChecker, UnregisteredSendBufferDetected)
{
    Harness h;
    auto *va = h.pair();
    va->postSend(via::makeSend(0xdead000, 512));
    h.sim.run();

    EXPECT_GE(h.checker.count(Violation::Kind::UnregisteredDma), 1u);
    ASSERT_FALSE(h.checker.violations().empty());
    const Violation &v = h.checker.violations().front();
    EXPECT_EQ(v.kind, Violation::Kind::UnregisteredDma);
    EXPECT_EQ(v.node, 0);
    EXPECT_EQ(v.lo, 0xdead000u);
    EXPECT_EQ(v.hi, 0xdead000u + 512u);
}

TEST(ViaChecker, UnregisteredRecvBufferDetected)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    h.pair(&vb);
    vb->postRecv(via::makeRecv(0xbad0000, 4096));

    EXPECT_EQ(h.checker.count(Violation::Kind::UnregisteredDma), 1u);
    EXPECT_EQ(h.checker.violations().front().node, 1);
}

TEST(ViaChecker, ZeroLengthDoorbellNeedsNoRegistration)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(&vb);
    auto dst = h.nicB.registerMemory(64);
    vb->postRecv(via::makeRecv(dst.base, 64));
    va->postSend(via::makeSend(0, 0)); // doorbell-only, mirrors providers
    h.sim.run();

    EXPECT_TRUE(h.checker.clean()) << h.checker.report();
}

TEST(ViaChecker, UseAfterDeregisterDetected)
{
    Harness h;
    auto *va = h.pair();
    auto src = h.nicA.registerMemory(4096);
    h.nicA.deregister(src.handle);
    va->postSend(via::makeSend(src.base, 128));
    h.sim.run();

    ASSERT_GE(h.checker.count(Violation::Kind::UseAfterDeregister), 1u);
    const Violation &v = h.checker.violations().front();
    EXPECT_EQ(v.kind, Violation::Kind::UseAfterDeregister);
    EXPECT_EQ(v.handle, src.handle);
    EXPECT_EQ(v.node, 0);
}

TEST(ViaChecker, DoubleDeregisterDetected)
{
    Harness h;
    auto region = h.nicA.registerMemory(4096);
    EXPECT_TRUE(h.nicA.deregister(region.handle));
    EXPECT_FALSE(h.nicA.deregister(region.handle));

    EXPECT_EQ(h.checker.count(Violation::Kind::UseAfterDeregister), 1u);
    EXPECT_EQ(h.checker.violations().front().op, "deregister");
}

TEST(ViaChecker, ReuseBeforeCompleteDetected)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(&vb);
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    vb->postRecv(via::makeRecv(dst.base, 4096));
    vb->postRecv(via::makeRecv(dst.base, 4096));

    auto desc = via::makeSend(src.base, 64);
    va->postSend(desc);
    va->postSend(desc); // still in flight: the NIC owns it
    h.sim.run();

    EXPECT_EQ(h.checker.count(Violation::Kind::ReuseBeforeComplete), 1u);
}

TEST(ViaChecker, RepostWithoutStatusResetDetected)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(&vb);
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    vb->postRecv(via::makeRecv(dst.base, 4096));
    vb->postRecv(via::makeRecv(dst.base, 4096));

    auto desc = via::makeSend(src.base, 64);
    va->postSend(desc);
    h.sim.run();
    ASSERT_EQ(desc->status, via::Status::Complete);

    va->postSend(desc); // completed but never reset to Pending
    h.sim.run();
    EXPECT_EQ(h.checker.count(Violation::Kind::ReuseBeforeComplete), 1u);
}

TEST(ViaChecker, LegalReuseAfterCompletionIsClean)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(&vb);
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);

    auto desc = via::makeSend(src.base, 64);
    for (int round = 0; round < 3; ++round) {
        vb->postRecv(via::makeRecv(dst.base, 4096));
        va->postSend(desc);
        h.sim.run();
        ASSERT_EQ(desc->status, via::Status::Complete);
        ASSERT_TRUE(vb->pollRecv());
        desc->status = via::Status::Pending; // the legal reuse protocol
    }
    EXPECT_TRUE(h.checker.clean()) << h.checker.report();
}

TEST(ViaChecker, CqOverflowDetected)
{
    Harness h;
    via::CompletionQueue cq(h.sim, /*capacity=*/1);
    h.checker.attachCq(cq, /*node=*/1);

    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(&vb, &cq);
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    vb->postRecv(via::makeRecv(dst.base, 4096));
    vb->postRecv(via::makeRecv(dst.base, 4096));
    va->postSend(via::makeSend(src.base, 64));
    va->postSend(via::makeSend(src.base, 64));
    h.sim.run(); // two completions land on a capacity-1 CQ

    EXPECT_EQ(h.checker.count(Violation::Kind::CqOverflow), 1u);
    EXPECT_EQ(h.checker.violations().front().node, 1);
}

TEST(ViaChecker, NegativeCreditsDetected)
{
    sim::Simulator sim;
    ViaChecker checker(sim, CheckMode::Record);
    core::CreditGate gate(4);
    gate.setObserver(checker.creditHook(2, "file->3"));

    gate.release(-5); // a corrupted credit-return message
    ASSERT_EQ(checker.count(Violation::Kind::NegativeCredits), 1u);
    const Violation &v = checker.violations().front();
    EXPECT_EQ(v.node, 2);
    EXPECT_EQ(v.op, "credit:file->3");
}

TEST(ViaChecker, CreditOverReleaseDetected)
{
    sim::Simulator sim;
    ViaChecker checker(sim, CheckMode::Record);
    core::CreditGate gate(4);
    gate.setObserver(checker.creditHook(0, "forward->1"));

    gate.release(1); // no credit was outstanding: window exceeded
    EXPECT_EQ(checker.count(Violation::Kind::CreditOverRelease), 1u);
}

TEST(ViaChecker, CreditGateNormalTrafficIsClean)
{
    sim::Simulator sim;
    ViaChecker checker(sim, CheckMode::Record);
    core::CreditGate gate(2);
    gate.setObserver(checker.creditHook(0, "regular->1"));

    int ran = 0;
    for (int i = 0; i < 5; ++i)
        gate.acquire([&ran]() { ++ran; });
    EXPECT_EQ(ran, 2);        // window exhausted, three queued
    gate.release(2);
    gate.release(1);
    EXPECT_EQ(ran, 5);
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_GT(checker.checksPerformed(), 0u);
}

TEST(ViaChecker, RmwOutOfBoundsDetected)
{
    Harness h;
    auto *va = h.pair();
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);

    // Starts inside the peer's region but runs 104 bytes past its end.
    va->postSend(
        via::makeRdmaWrite(src.base, 200, dst.base + 4000));
    h.sim.run();

    ASSERT_GE(h.checker.count(Violation::Kind::RmwOutOfBounds), 1u);
    const Violation &v = h.checker.violations().front();
    EXPECT_EQ(v.kind, Violation::Kind::RmwOutOfBounds);
    EXPECT_EQ(v.handle, dst.handle);
    EXPECT_EQ(v.node, 1); // the *target* node's address space
    EXPECT_EQ(v.lo, dst.base + 4000);
    EXPECT_EQ(v.hi, dst.base + 4200);
}

TEST(ViaChecker, RmwToUnregisteredRemoteDetected)
{
    Harness h;
    auto *va = h.pair();
    auto src = h.nicA.registerMemory(4096);
    va->postSend(via::makeRdmaWrite(src.base, 64, 0xf00d0000));
    h.sim.run();

    EXPECT_GE(h.checker.count(Violation::Kind::UnregisteredDma), 1u);
    EXPECT_EQ(h.checker.violations().front().node, 1);
}

TEST(ViaChecker, RmwToDeregisteredRemoteDetected)
{
    Harness h;
    auto *va = h.pair();
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    h.nicB.deregister(dst.handle);

    va->postSend(via::makeRdmaWrite(src.base, 64, dst.base));
    h.sim.run();

    ASSERT_GE(h.checker.count(Violation::Kind::UseAfterDeregister), 1u);
    EXPECT_EQ(h.checker.violations().front().handle, dst.handle);
}

TEST(ViaCheckerDeathTest, AbortModePanicsWithStructuredReport)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            Harness h(CheckMode::Abort);
            auto *va = h.pair();
            va->postSend(via::makeSend(0xdead000, 512));
            h.sim.run();
        },
        "ViaChecker.*unregistered-dma");
}

// ---------------------------------------------------------------------
// Structured reports
// ---------------------------------------------------------------------

TEST(ViaChecker, ViolationsCarryTickAndFormat)
{
    Harness h;
    auto *va = h.pair();
    auto src = h.nicA.registerMemory(4096);
    auto dst = h.nicB.registerMemory(4096);
    // Advance simulated time before seeding the violation so the report
    // carries a non-zero tick: a completed round trip does that.
    via::VirtualInterface *vb = h.nicB.createVi(
        via::Reliability::ReliableDelivery);
    (void)vb;
    va->postSend(via::makeRdmaWrite(src.base, 64, dst.base));
    h.sim.run();
    ASSERT_TRUE(h.checker.clean());

    va->postSend(via::makeRdmaWrite(src.base, 64, dst.base + 5000));
    h.sim.run();

    ASSERT_FALSE(h.checker.violations().empty());
    const Violation &v = h.checker.violations().front();
    EXPECT_GT(v.tick, 0u);
    std::string line = v.format();
    EXPECT_NE(line.find("tick"), std::string::npos);
    EXPECT_NE(line.find("node 1"), std::string::npos);
    EXPECT_NE(line.find("range"), std::string::npos);
    EXPECT_NE(h.checker.report().find("violation"), std::string::npos);
}

// ---------------------------------------------------------------------
// Clean runs: zero false positives
// ---------------------------------------------------------------------

TEST(ViaChecker, CleanTransfersReportNothing)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(&vb);
    auto src = h.nicA.registerMemory(1 << 16);
    auto dst = h.nicB.registerMemory(1 << 16);

    for (int i = 0; i < 8; ++i)
        vb->postRecv(via::makeRecv(dst.base, 1 << 16));
    for (int i = 0; i < 8; ++i)
        va->postSend(via::makeSend(src.base, 1000 + i));
    for (int i = 0; i < 8; ++i)
        va->postSend(via::makeRdmaWrite(src.base, 256, dst.base + 256 * i));
    h.sim.run();

    EXPECT_TRUE(h.checker.clean()) << h.checker.report();
    EXPECT_GT(h.checker.checksPerformed(), 40u);
}

TEST(ViaChecker, CleanFullClusterRunAtEveryVersion)
{
    workload::TraceSpec spec;
    spec.name = "check";
    spec.numFiles = 400;
    spec.numRequests = 4000;
    spec.avgFileSize = 12000;
    spec.avgRequestSize = 9000;
    spec.seed = 11;
    workload::Trace trace = workload::generateTrace(spec);

    for (core::Version version :
         {core::Version::V0, core::Version::V1, core::Version::V3,
          core::Version::V5}) {
        core::PressConfig config;
        config.nodes = 4;
        config.protocol = core::Protocol::ViaClan;
        config.version = version;
        config.cacheBytes = 8 * util::MB;
        config.clientsPerNode = 44;
        config.warmupFraction = 0.3;
        config.viaCheck = core::ViaCheck::Record;

        core::PressCluster cluster(config, trace);
        auto results = cluster.run();
        EXPECT_GT(results.throughput, 0.0);

        const ViaChecker *checker = cluster.viaChecker();
        ASSERT_NE(checker, nullptr);
        EXPECT_TRUE(checker->clean())
            << core::versionName(version) << ": " << checker->report();
        // "Fully checked" must mean something: a whole run exercises
        // the invariants tens of thousands of times.
        EXPECT_GT(checker->checksPerformed(), 10000u)
            << core::versionName(version);
    }
}

TEST(ViaChecker, CheckerOffMeansNoChecker)
{
    workload::TraceSpec spec;
    spec.name = "off";
    spec.numFiles = 50;
    spec.numRequests = 200;
    spec.avgFileSize = 8000;
    spec.avgRequestSize = 6000;
    spec.seed = 3;
    workload::Trace trace = workload::generateTrace(spec);

    core::PressConfig config;
    config.nodes = 2;
    config.protocol = core::Protocol::ViaClan;
    config.clientsPerNode = 4;
    config.warmupFraction = 0.0;
    config.viaCheck = core::ViaCheck::Off;

    core::PressCluster cluster(config, trace);
    cluster.run();
    EXPECT_EQ(cluster.viaChecker(), nullptr);
}

// ---------------------------------------------------------------------
// Connection-loss vocabulary (fault subsystem)
// ---------------------------------------------------------------------

TEST(ViaChecker, PostToDeadViDetected)
{
    Harness h;
    auto *va = h.pair();
    auto src = h.nicA.registerMemory(256);

    va->breakLocal(); // peer crashed: endpoint torn down
    va->postSend(via::makeSend(src.base, 256));

    EXPECT_GE(h.checker.count(Violation::Kind::PostToDeadVi), 1u);
    ASSERT_FALSE(h.checker.violations().empty());
    const Violation &v = h.checker.violations().front();
    EXPECT_EQ(v.kind, Violation::Kind::PostToDeadVi);
    EXPECT_EQ(v.node, 0);
}

TEST(ViaChecker, PostRecvOnDeadViDetected)
{
    Harness h;
    via::VirtualInterface *vb = nullptr;
    h.pair(&vb);
    auto dst = h.nicB.registerMemory(256);

    vb->breakLocal();
    vb->postRecv(via::makeRecv(dst.base, 256));

    EXPECT_GE(h.checker.count(Violation::Kind::PostToDeadVi), 1u);
    EXPECT_EQ(h.checker.violations().front().node, 1);
}

TEST(ViaChecker, ErrorCompletionDrainIsClean)
{
    // The legitimate VIA disconnect vocabulary: receives posted before
    // the teardown drain with ErrorFlushed and in-flight sends toward
    // the broken end complete with ErrorDisconnected. Neither is a
    // protocol violation — only *new* posts on the dead VI are.
    Harness h;
    via::VirtualInterface *vb = nullptr;
    auto *va = h.pair(&vb);
    auto src = h.nicA.registerMemory(256);
    auto dst = h.nicB.registerMemory(256);

    vb->postRecv(via::makeRecv(dst.base, 256));
    va->postSend(via::makeSend(src.base, 256));
    vb->breakLocal(); // recv drains ErrorFlushed, send completes
                      // ErrorDisconnected on arrival
    h.sim.run();

    EXPECT_TRUE(h.checker.clean()) << h.checker.report();
}
