/**
 * @file
 * Tests for check::TickRaceHunter: a synthetic cross-domain tick-race
 * must be detected (and its colliding events named via the trace
 * diff), while an order-independent scenario must come out clean.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/tick_race.hpp"
#include "sim/simulator.hpp"

using namespace press;
using check::RaceFinding;
using check::RunFingerprint;
using check::TickRaceHunter;

namespace {

/**
 * Fifty ticks, each with one event in domain 0 and one in domain 1,
 * folding their ids into one shared hash in firing order. The fold is
 * non-commutative, so the result depends on the equal-tick
 * cross-domain order — a deliberate tick-race. Both events also append
 * to the same node's trace stream, so the diff can name them.
 */
RunFingerprint
racyScenario(sim::TieBreak policy, std::uint64_t seed)
{
    sim::Simulator sim;
    sim.setTieBreak(policy, seed);
    std::uint64_t h = 0;
    auto trace = std::make_shared<obs::TraceData>();
    trace->nodes = 1;
    trace->events.resize(1);
    for (int t = 1; t <= 50; ++t)
        for (int d = 0; d < 2; ++d)
            sim.scheduleIn(d, t, [&sim, &h, trace, d] {
                h = check::hashCombine(
                    h, static_cast<std::uint64_t>(d));
                obs::TraceEvent e;
                e.tick = sim.now();
                e.arg = static_cast<std::uint64_t>(d);
                e.node = 0;
                trace->events[0].push_back(e);
            });
    sim.run();

    RunFingerprint fp;
    fp.eventsExecuted = sim.eventsExecuted();
    fp.finalTick = sim.now();
    fp.resultsHash = h;
    fp.headline = "hash " + std::to_string(h);
    fp.trace = trace;
    return fp;
}

/**
 * The same shape, but order-independent: each domain folds into its
 * own accumulator and its own per-node stream, combined in fixed
 * domain order at the end — exactly how race-free sharded state must
 * behave.
 */
RunFingerprint
cleanScenario(sim::TieBreak policy, std::uint64_t seed)
{
    sim::Simulator sim;
    sim.setTieBreak(policy, seed);
    std::uint64_t per_domain[2] = {0, 0};
    auto trace = std::make_shared<obs::TraceData>();
    trace->nodes = 2;
    trace->events.resize(2);
    for (int t = 1; t <= 50; ++t)
        for (int d = 0; d < 2; ++d)
            sim.scheduleIn(d, t, [&sim, &per_domain, trace, d] {
                per_domain[d] = check::hashCombine(
                    per_domain[d], static_cast<std::uint64_t>(
                                       sim.now()));
                obs::TraceEvent e;
                e.tick = sim.now();
                e.arg = static_cast<std::uint64_t>(d);
                e.node = static_cast<std::uint8_t>(d);
                trace->events[d].push_back(e);
            });
    sim.run();

    RunFingerprint fp;
    fp.eventsExecuted = sim.eventsExecuted();
    fp.finalTick = sim.now();
    fp.resultsHash =
        check::hashCombine(per_domain[0], per_domain[1]);
    fp.trace = trace;
    return fp;
}

} // namespace

TEST(TickRaceHunter, DetectsAnOrderDependentCrossDomainRace)
{
    TickRaceHunter::Options opts;
    opts.seeds = 4;
    opts.jobs = 2;
    TickRaceHunter hunter(opts);
    hunter.addScenario("racy", racyScenario);

    EXPECT_FALSE(hunter.run());
    EXPECT_FALSE(hunter.clean());
    EXPECT_GT(hunter.totalFindings(), 0u);
    EXPECT_EQ(hunter.runsExecuted(), 5);
    ASSERT_FALSE(hunter.findings().empty());
    EXPECT_EQ(hunter.findings()[0].scenario, "racy");
    EXPECT_NE(hunter.report().find("racy"), std::string::npos);
}

TEST(TickRaceHunter, TraceDiffNamesTheCollidingEvents)
{
    TickRaceHunter::Options opts;
    opts.seeds = 4;
    TickRaceHunter hunter(opts);
    hunter.addScenario("racy", racyScenario);
    hunter.run();

    bool named = false;
    for (const RaceFinding &f : hunter.findings()) {
        if (f.what != "trace")
            continue;
        named = true;
        EXPECT_EQ(f.node, 0);
        // The two renderings are the colliding pair: same tick,
        // different domain payloads.
        EXPECT_NE(f.baseline, f.observed);
        EXPECT_NE(f.baseline.find("tick"), std::string::npos);
        EXPECT_NE(f.format().find("fifo={"), std::string::npos);
    }
    EXPECT_TRUE(named);
}

TEST(TickRaceHunter, OrderIndependentScenarioIsClean)
{
    TickRaceHunter::Options opts;
    opts.seeds = 8;
    opts.jobs = 4;
    TickRaceHunter hunter(opts);
    hunter.addScenario("clean", cleanScenario);

    EXPECT_TRUE(hunter.run());
    EXPECT_TRUE(hunter.clean());
    EXPECT_EQ(hunter.totalFindings(), 0u);
    EXPECT_EQ(hunter.runsExecuted(), 9);
}

TEST(TickRaceHunter, MixedScenariosAttributeFindingsCorrectly)
{
    TickRaceHunter::Options opts;
    opts.seeds = 3;
    opts.jobs = 3;
    TickRaceHunter hunter(opts);
    hunter.addScenario("clean", cleanScenario);
    hunter.addScenario("racy", racyScenario);

    EXPECT_FALSE(hunter.run());
    ASSERT_FALSE(hunter.findings().empty());
    for (const RaceFinding &f : hunter.findings())
        EXPECT_EQ(f.scenario, "racy");
}

TEST(TickRaceHunter, FifoBaselineIsItselfDeterministic)
{
    // The comparison is only meaningful when the FIFO fingerprint is a
    // constant; the racy scenario is deterministic under any *fixed*
    // ordering policy.
    RunFingerprint a = racyScenario(sim::TieBreak::Fifo, 0);
    RunFingerprint b = racyScenario(sim::TieBreak::Fifo, 0);
    EXPECT_EQ(a.resultsHash, b.resultsHash);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.finalTick, b.finalTick);
}

TEST(TickRaceHunter, SeedScheduleIsDeterministicAndNonZero)
{
    for (int k = 1; k <= 64; ++k) {
        std::uint64_t s = TickRaceHunter::seedForRun(1, k);
        EXPECT_NE(s, 0u);
        EXPECT_EQ(s, TickRaceHunter::seedForRun(1, k));
    }
    EXPECT_NE(TickRaceHunter::seedForRun(1, 1),
              TickRaceHunter::seedForRun(1, 2));
    EXPECT_NE(TickRaceHunter::seedForRun(1, 1),
              TickRaceHunter::seedForRun(2, 1));
}
