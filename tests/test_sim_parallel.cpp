/**
 * @file
 * Tests for the windowed parallel event kernel (sim/parallel.hpp) and
 * the domain-hygiene fixes in the sequential loop.
 *
 * The kernel's contract is byte-identity: for a fixed (events,
 * lookahead) the execution — per-domain event order, clocks, lane
 * statistics — is a pure function, independent of the worker count.
 * Every scenario here is run at 1, 2 and 4 threads and fingerprinted;
 * the fingerprints must match exactly.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

using namespace press;
using sim::Domain;
using sim::NoDomain;
using sim::Tick;

namespace {

/** Per-domain execution log: only the owning shard appends, so logging
 *  is race-free under any worker count. The fingerprint concatenates
 *  the logs in domain order after the run. */
struct DomainLog {
    std::vector<std::string> lines;

    explicit DomainLog(int domains) : lines(domains) {}

    void
    hit(sim::Simulator &sim, const char *tag)
    {
        Domain d = sim.currentDomain();
        ASSERT_NE(d, NoDomain);
        lines[d] += tag;
        lines[d] += '@';
        lines[d] += std::to_string(sim.now());
        lines[d] += ' ';
    }

    std::string
    fingerprint(const sim::Simulator &sim) const
    {
        std::string fp;
        for (std::size_t d = 0; d < lines.size(); ++d) {
            fp += "d" + std::to_string(d) + ": " + lines[d] + "\n";
        }
        fp += "now=" + std::to_string(sim.now());
        fp += " executed=" + std::to_string(sim.eventsExecuted());
        fp += "\n";
        std::ostringstream lanes;
        sim.writeLaneTable(lanes);
        fp += lanes.str();
        return fp;
    }
};

constexpr Tick Look = 10;

/** Ping-pong between two domains at exactly the lookahead bound, with
 *  a same-domain follow-up chain after every arrival. */
std::string
runPingPong(int threads)
{
    sim::Simulator sim;
    DomainLog log(2);

    struct Court {
        sim::Simulator &sim;
        DomainLog &log;
        int left = 12;

        void
        arrive()
        {
            log.hit(sim, "ball");
            // Intra-window causal chain: inherits the domain.
            sim.schedule(1, [this]() { log.hit(sim, "echo"); });
            if (--left <= 0)
                return;
            Domain other = sim.currentDomain() == 0 ? 1 : 0;
            sim.scheduleIn(other, Look, [this]() { arrive(); });
        }
    } court{sim, log};

    sim.scheduleIn(0, 0, [&court]() { court.arrive(); });

    sim::ParallelPlan plan;
    plan.domains = 2;
    plan.threads = threads;
    plan.lookahead = Look;
    sim.runParallel(plan);
    return log.fingerprint(sim);
}

/** Equal-tick fan-in: four sources hit one sink at the same tick. The
 *  deterministic drain (ascending source, FIFO within a lane) must give
 *  the same arrival order for every thread count. */
std::string
runFanIn(int threads)
{
    sim::Simulator sim;
    DomainLog log(5);

    for (Domain src = 1; src <= 4; ++src) {
        sim.setCurrentDomain(src);
        for (int round = 0; round < 3; ++round) {
            sim.schedule(round * 7, [&sim, &log, src]() {
                log.hit(sim, "tx");
                char tag[8] = {'r', 'x', static_cast<char>('0' + src), 0};
                sim.scheduleIn(0, Look,
                               [&sim, &log, tag]() { log.hit(sim, tag); });
            });
        }
    }
    sim.setCurrentDomain(NoDomain);

    sim::ParallelPlan plan;
    plan.domains = 5;
    plan.threads = threads;
    plan.lookahead = Look;
    sim.runParallel(plan);
    return log.fingerprint(sim);
}

/** Dense deterministic mesh: every arrival relays to two neighbours at
 *  two different super-lookahead delays and spawns local work, for
 *  enough rounds to exercise many windows and every lane. */
std::string
runMesh(int threads, int domains)
{
    sim::Simulator sim;
    DomainLog log(domains);

    struct Node {
        sim::Simulator &sim;
        DomainLog &log;
        int domains;

        void
        arrive(int ttl)
        {
            log.hit(sim, "m");
            sim.schedule(2, [this]() { log.hit(sim, "w"); });
            if (ttl <= 0)
                return;
            Domain d = sim.currentDomain();
            Domain n1 = (d + 1) % domains;
            Domain n2 = (d + 2) % domains;
            sim.scheduleIn(n1, Look, [this, ttl]() { arrive(ttl - 1); });
            sim.scheduleIn(n2, Look + 3,
                           [this, ttl]() { arrive(ttl - 1); });
        }
    } node{sim, log, domains};

    sim.scheduleIn(0, 0, [&node]() { node.arrive(7); });
    sim.scheduleIn(domains / 2, 5, [&node]() { node.arrive(7); });

    sim::ParallelPlan plan;
    plan.domains = domains;
    plan.threads = threads;
    plan.lookahead = Look;
    sim.runParallel(plan);
    return log.fingerprint(sim);
}

} // namespace

// --- Sequential-loop domain hygiene (the stale-domain regression) ----

TEST(SimulatorDomain, RunResetsCurrentDomainAfterLoop)
{
    sim::Simulator sim;
    sim.setCurrentDomain(3);
    sim.schedule(5, []() {});
    sim.run();
    // Before the fix the last fired event's domain leaked out of the
    // loop and anything the driver scheduled next inherited domain 3.
    EXPECT_EQ(sim.currentDomain(), NoDomain);
}

TEST(SimulatorDomain, CappedRunResetsCurrentDomain)
{
    sim::Simulator sim;
    sim.setCurrentDomain(2);
    sim.schedule(5, []() {});
    sim.schedule(50, []() {});
    sim.run(10);
    EXPECT_EQ(sim.currentDomain(), NoDomain);
    EXPECT_FALSE(sim.idle());
}

TEST(SimulatorDomain, StepResetsCurrentDomain)
{
    sim::Simulator sim;
    sim.setCurrentDomain(1);
    bool fired = false;
    sim.schedule(5, [&]() { fired = true; });
    EXPECT_TRUE(sim.step());
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.currentDomain(), NoDomain);
    EXPECT_FALSE(sim.step());
}

// --- Parallel kernel: byte-identity across thread counts -------------

TEST(ParallelKernel, PingPongByteIdentical)
{
    std::string base = runPingPong(1);
    EXPECT_FALSE(base.empty());
    EXPECT_EQ(base, runPingPong(2));
    EXPECT_EQ(base, runPingPong(4));
}

TEST(ParallelKernel, FanInByteIdentical)
{
    std::string base = runFanIn(1);
    EXPECT_NE(base.find("rx1@"), std::string::npos);
    EXPECT_EQ(base, runFanIn(2));
    EXPECT_EQ(base, runFanIn(4));
}

TEST(ParallelKernel, MeshByteIdentical)
{
    std::string base = runMesh(1, 6);
    EXPECT_EQ(base, runMesh(2, 6));
    EXPECT_EQ(base, runMesh(4, 6));
    EXPECT_EQ(base, runMesh(6, 6));
}

// --- Parallel kernel: semantics --------------------------------------

TEST(ParallelKernel, SameDomainSchedulingStaysInWindow)
{
    // A chain of 1 ns steps inside one domain must all execute even
    // though every step lands inside the current window.
    sim::Simulator sim;
    int steps = 0;
    struct Chain {
        sim::Simulator &sim;
        int &steps;
        void
        step(int left)
        {
            ++steps;
            if (left > 0)
                sim.schedule(1, [this, left]() { step(left - 1); });
        }
    } chain{sim, steps};
    sim.scheduleIn(0, 0, [&chain]() { chain.step(25); });

    sim::ParallelPlan plan;
    plan.domains = 3;
    plan.threads = 3;
    plan.lookahead = Look;
    sim.runParallel(plan);
    EXPECT_EQ(steps, 26);
    EXPECT_EQ(sim.now(), 25);
    EXPECT_EQ(sim.currentDomain(), NoDomain);
}

TEST(ParallelKernel, CrossCallRunsInTargetDomain)
{
    sim::Simulator sim;
    Domain seen = NoDomain;
    Tick fired_at = -1;
    Tick called_at = -1;
    sim.scheduleIn(1, 5, [&]() {
        called_at = sim.now();
        sim.crossCall(0, [&]() {
            seen = sim.currentDomain();
            fired_at = sim.now();
        });
    });

    sim::ParallelPlan plan;
    plan.domains = 2;
    plan.threads = 2;
    plan.lookahead = Look;
    sim.runParallel(plan);
    EXPECT_EQ(seen, 0);
    EXPECT_EQ(called_at, 5);
    // Deferred to the start of the next window (the window was [5, 15)).
    EXPECT_EQ(fired_at, 15);
}

TEST(ParallelKernel, CrossCallToOwnDomainIsInline)
{
    sim::Simulator sim;
    bool inner = false;
    sim.scheduleIn(1, 5, [&]() {
        sim.crossCall(1, [&]() {
            inner = true;
            EXPECT_EQ(sim.now(), 5);
        });
        EXPECT_TRUE(inner); // ran synchronously
    });
    sim::ParallelPlan plan;
    plan.domains = 2;
    plan.threads = 2;
    plan.lookahead = Look;
    sim.runParallel(plan);
    EXPECT_TRUE(inner);
}

TEST(ParallelKernel, SequentialCrossCallAndBarrierAreInline)
{
    sim::Simulator sim;
    int order = 0;
    sim.setCurrentDomain(0);
    sim.schedule(1, [&]() {
        sim.crossCall(5, [&]() { EXPECT_EQ(order++, 0); });
        sim.atBarrier([&]() { EXPECT_EQ(order++, 1); });
        EXPECT_EQ(order, 2);
    });
    sim.setCurrentDomain(NoDomain);
    sim.run();
    EXPECT_EQ(order, 2);
}

TEST(ParallelKernel, BarrierActionRunsQuiescedAndCanSchedule)
{
    sim::Simulator sim;
    Tick barrier_now = -1;
    Domain barrier_domain = NoDomain;
    bool rescheduled = false;
    sim.scheduleIn(2, 4, [&]() {
        sim.atBarrier([&]() {
            barrier_now = sim.now();
            barrier_domain = sim.currentDomain();
            // Barrier actions may seed new work (the open-loop
            // measurement reset does exactly this).
            sim.schedule(3, [&]() { rescheduled = true; });
        });
    });

    sim::ParallelPlan plan;
    plan.domains = 3;
    plan.threads = 2;
    plan.lookahead = Look;
    sim.runParallel(plan);
    // The action runs at the window barrier (window was [4, 14)) in the
    // domain that requested it.
    EXPECT_EQ(barrier_now, 14);
    EXPECT_EQ(barrier_domain, 2);
    EXPECT_TRUE(rescheduled);
    EXPECT_EQ(sim.now(), 17);
}

TEST(ParallelKernel, UntilCapMatchesRunSemantics)
{
    // Events exactly at `until` run; later events survive in global
    // order and a subsequent sequential run() picks them up.
    auto build = [](sim::Simulator &sim, std::vector<int> &fired) {
        for (Domain d = 0; d < 2; ++d) {
            sim.setCurrentDomain(d);
            sim.schedule(10, [&fired, d]() { fired.push_back(10 + d); });
            sim.schedule(20, [&fired, d]() { fired.push_back(20 + d); });
            sim.schedule(30, [&fired, d]() { fired.push_back(30 + d); });
        }
        sim.setCurrentDomain(NoDomain);
    };

    sim::Simulator seq;
    std::vector<int> seq_fired;
    build(seq, seq_fired);
    seq.run(20);
    Tick seq_mid = seq.now();
    seq.run();

    sim::Simulator par;
    std::vector<int> par_fired;
    build(par, par_fired);
    sim::ParallelPlan plan;
    plan.domains = 2;
    // One worker: both domains fire at equal ticks into one shared
    // vector, which only stays race-free serially. Thread-count
    // identity is covered by the fingerprint tests above.
    plan.threads = 1;
    plan.lookahead = Look;
    par.runParallel(plan, 20);
    EXPECT_EQ(par.now(), seq_mid);
    EXPECT_FALSE(par.idle());
    par.run();

    EXPECT_EQ(par_fired, seq_fired);
    EXPECT_EQ(par.now(), seq.now());
    EXPECT_EQ(par.eventsExecuted(), seq.eventsExecuted());
}

TEST(ParallelKernel, LaneStatsMeasureSchedulingEdges)
{
    sim::Simulator sim;
    sim.scheduleIn(0, 0, [&]() {
        sim.scheduleIn(1, Look, []() {});
        sim.scheduleIn(1, Look + 5, []() {});
        sim.scheduleIn(2, Look + 2, []() {});
    });
    sim::ParallelPlan plan;
    plan.domains = 3;
    plan.threads = 1;
    plan.lookahead = Look;
    sim.runParallel(plan);

    const auto &lanes = sim.laneStats();
    ASSERT_EQ(lanes.size(), 2u);
    EXPECT_EQ(lanes[0].from, 0);
    EXPECT_EQ(lanes[0].to, 1);
    EXPECT_EQ(lanes[0].count, 2u);
    EXPECT_EQ(lanes[0].minDelay, Look);
    EXPECT_EQ(lanes[0].bound, Look);
    EXPECT_EQ(lanes[1].from, 0);
    EXPECT_EQ(lanes[1].to, 2);
    EXPECT_EQ(lanes[1].count, 1u);
    EXPECT_EQ(lanes[1].minDelay, Look + 2);

    std::ostringstream table;
    sim.writeLaneTable(table);
    EXPECT_EQ(table.str(), "from to count min_delay bound verdict\n"
                           "0 1 2 10 10 ok\n"
                           "0 2 1 12 10 ok\n");
}

TEST(ParallelKernel, EmptyRunIsANoop)
{
    sim::Simulator sim;
    sim::ParallelPlan plan;
    plan.domains = 4;
    plan.threads = 4;
    plan.lookahead = Look;
    EXPECT_EQ(sim.runParallel(plan), 0);
    EXPECT_TRUE(sim.idle());
    EXPECT_EQ(sim.eventsExecuted(), 0u);
}
