/**
 * @file
 * Tests for the TCP stack model: cost arithmetic, ordered delivery,
 * socket-buffer flow control, and the Section 3.2 calibration anchors.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/payload.hpp"
#include "sim/resource.hpp"
#include "tcpnet/tcp_stack.hpp"
#include "util/units.hpp"

using namespace press;
using namespace press::util;
using tcpnet::TcpChannel;
using tcpnet::TcpCosts;
using tcpnet::TcpStack;

namespace {

struct Pair {
    sim::Simulator sim;
    net::Fabric fabric;
    sim::FifoResource cpuA, cpuB;
    TcpStack stackA, stackB;
    TcpChannel *ab = nullptr, *ba = nullptr;

    explicit Pair(net::FabricConfig cfg = net::FabricConfig::fastEthernet(),
                  TcpCosts costs = TcpCosts::defaults(),
                  std::uint64_t sockbuf = 64 * 1024)
        : fabric(sim, cfg, 2),
          cpuA(sim, "cpuA"),
          cpuB(sim, "cpuB"),
          stackA(sim, fabric, 0, cpuA, 0, costs),
          stackB(sim, fabric, 1, cpuB, 0, costs)
    {
        auto [f, r] = TcpStack::connect(stackA, stackB, sockbuf);
        ab = f;
        ba = r;
    }
};

} // namespace

TEST(TcpCosts, SegmentsAndWireBytes)
{
    TcpCosts c = TcpCosts::defaults();
    EXPECT_EQ(c.segments(0), 1u);
    EXPECT_EQ(c.segments(1460), 1u);
    EXPECT_EQ(c.segments(1461), 2u);
    EXPECT_EQ(c.segments(32000), 22u);
    EXPECT_EQ(c.wireBytes(1000), 1000 + 58u);
    EXPECT_EQ(c.wireBytes(3000), 3000 + 3 * 58u);
}

TEST(TcpCosts, ClanVariantHasFewerSegments)
{
    TcpCosts fe = TcpCosts::defaults();
    TcpCosts cl = TcpCosts::clan();
    EXPECT_GT(fe.segments(32000), cl.segments(32000));
    EXPECT_GT(fe.recvCpu(32000), cl.recvCpu(32000));
    // Fixed and per-byte identical: the same kernel.
    EXPECT_EQ(fe.sendFixed, cl.sendFixed);
    EXPECT_EQ(fe.sendPerByte, cl.sendPerByte);
}

TEST(TcpChannel, DeliversPayloadInOrder)
{
    Pair p;
    std::vector<int> got;
    p.ab->onReceive([&](std::uint64_t, const net::Payload &pl) {
        got.push_back(*net::payloadAs<int>(pl));
    });
    for (int i = 0; i < 20; ++i)
        p.ab->send(100 + i, net::makePayload<int>(i));
    p.sim.run();
    ASSERT_EQ(got.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(TcpChannel, ChargesBothCpus)
{
    Pair p;
    p.ab->onReceive([](std::uint64_t, const net::Payload &) {});
    p.ab->send(10000);
    p.sim.run();
    EXPECT_GT(p.cpuA.busyTime(), 0);
    EXPECT_GT(p.cpuB.busyTime(), 0);
    // Send side: fixed + per-byte + per-segment.
    TcpCosts c = TcpCosts::defaults();
    EXPECT_EQ(p.cpuA.busyTime(), c.sendCpu(10000));
    EXPECT_EQ(p.cpuB.busyTime(), c.recvCpu(10000));
}

TEST(TcpChannel, WindowBlocksExcessTraffic)
{
    // Tiny socket buffer: the second message must wait until the first
    // is consumed remotely.
    Pair p(net::FabricConfig::fastEthernet(), TcpCosts::defaults(), 1000);
    std::vector<sim::Tick> arrivals;
    p.ab->onReceive([&](std::uint64_t, const net::Payload &) {
        arrivals.push_back(p.sim.now());
    });
    p.ab->send(900);
    p.ab->send(900);
    EXPECT_EQ(p.ab->backlog(), 1u);
    EXPECT_EQ(p.stackA.stats().sendsBlocked, 1u);
    p.sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_GT(arrivals[1], arrivals[0]);
    EXPECT_EQ(p.ab->inFlight(), 0u);
}

TEST(TcpChannel, OversizedMessageStillAdmittedAlone)
{
    Pair p(net::FabricConfig::fastEthernet(), TcpCosts::defaults(), 1000);
    int got = 0;
    p.ab->onReceive([&](std::uint64_t, const net::Payload &) { ++got; });
    p.ab->send(50000); // bigger than the whole window
    p.sim.run();
    EXPECT_EQ(got, 1);
}

TEST(TcpChannel, BothDirectionsIndependent)
{
    Pair p;
    int a2b = 0, b2a = 0;
    p.ab->onReceive([&](std::uint64_t, const net::Payload &) { ++a2b; });
    p.ba->onReceive([&](std::uint64_t, const net::Payload &) { ++b2a; });
    p.ab->send(100);
    p.ba->send(100);
    p.ba->send(100);
    p.sim.run();
    EXPECT_EQ(a2b, 1);
    EXPECT_EQ(b2a, 2);
    EXPECT_EQ(p.stackA.stats().messagesSent, 1u);
    EXPECT_EQ(p.stackA.stats().messagesReceived, 2u);
}

TEST(TcpChannel, OnSentFiresAfterKernelSendPath)
{
    Pair p;
    sim::Tick sent_at = -1;
    p.ab->onReceive([](std::uint64_t, const net::Payload &) {});
    p.ab->send(5000, nullptr, [&] { sent_at = p.sim.now(); });
    p.sim.run();
    TcpCosts c = TcpCosts::defaults();
    EXPECT_EQ(sent_at, c.sendCpu(5000));
}

/** Paper anchor (S3.2): 4-byte one-way latency ~82 us on FE, ~76 us on
 *  cLAN. Allow +-20%. */
TEST(TcpChannel, PaperAnchorSmallMessageLatency)
{
    for (bool clan : {false, true}) {
        Pair p(clan ? net::FabricConfig::clan()
                    : net::FabricConfig::fastEthernet(),
               clan ? TcpCosts::clan() : TcpCosts::defaults());
        sim::Tick arrived = -1;
        p.ab->onReceive([&](std::uint64_t, const net::Payload &) {
            arrived = p.sim.now();
        });
        p.ab->send(4);
        p.sim.run();
        double us = static_cast<double>(arrived) / 1000.0;
        double target = clan ? 76.0 : 82.0;
        EXPECT_GT(us, target * 0.8) << (clan ? "cLAN" : "FE");
        EXPECT_LT(us, target * 1.2) << (clan ? "cLAN" : "FE");
    }
}

/** Paper anchor (S3.2): streamed 32 KB messages reach ~11.5 MB/s on FE
 *  (wire-limited) and ~32 MB/s on cLAN (CPU-limited). */
TEST(TcpChannel, PaperAnchorStreamBandwidth)
{
    for (bool clan : {false, true}) {
        Pair p(clan ? net::FabricConfig::clan()
                    : net::FabricConfig::fastEthernet(),
               clan ? TcpCosts::clan() : TcpCosts::defaults(),
               256 * 1024);
        std::uint64_t received = 0;
        p.ab->onReceive([&](std::uint64_t bytes, const net::Payload &) {
            received += bytes;
        });
        const int msgs = 64;
        for (int i = 0; i < msgs; ++i)
            p.ab->send(32000);
        p.sim.run();
        ASSERT_EQ(received, msgs * 32000u);
        double secs = sim::nsToSeconds(p.sim.now());
        double bw = static_cast<double>(received) / secs / 1e6;
        if (clan) {
            EXPECT_GT(bw, 26.0);
            EXPECT_LT(bw, 40.0);
        } else {
            EXPECT_GT(bw, 10.0);
            EXPECT_LT(bw, 13.0);
        }
    }
}
