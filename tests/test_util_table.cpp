/**
 * @file
 * Tests for the text-table and number formatting helpers.
 */

#include <gtest/gtest.h>

#include "util/table.hpp"

using press::util::fmtF;
using press::util::fmtInt;
using press::util::fmtPct;
using press::util::TextTable;

TEST(Fmt, Fixed)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtF(2.0, 0), "2");
    EXPECT_EQ(fmtF(-1.25, 1), "-1.2");
}

TEST(Fmt, Percent)
{
    EXPECT_EQ(fmtPct(0.123), "12.3%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(Fmt, ThousandsSeparators)
{
    EXPECT_EQ(fmtInt(0), "0");
    EXPECT_EQ(fmtInt(999), "999");
    EXPECT_EQ(fmtInt(1000), "1,000");
    EXPECT_EQ(fmtInt(2978121), "2,978,121");
    EXPECT_EQ(fmtInt(-1234567), "-1,234,567");
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22,000"});
    std::string out = t.render();
    // Header present, rule under it, rows present.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22,000"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Numeric cells right-aligned: "1" ends its column.
    auto line_with = [&](const std::string &needle) {
        auto pos = out.find(needle);
        auto start = out.rfind('\n', pos);
        auto end = out.find('\n', pos);
        return out.substr(start + 1, end - start - 1);
    };
    std::string row1 = line_with("alpha");
    std::string row2 = line_with("22,000");
    EXPECT_EQ(row1.size(), row2.size());
}

TEST(TextTable, SeparatorRows)
{
    TextTable t;
    t.header({"a"});
    t.row({"x"});
    t.separator();
    t.row({"y"});
    std::string out = t.render();
    // Two rules: one under the header, one explicit.
    std::size_t first = out.find("---");
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(out.find("---", first + 4), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"only-one"});
    std::string out = t.render();
    EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(TextTable, CsvRendering)
{
    TextTable t;
    t.header({"a", "b"});
    t.row({"plain", "1,000"});
    t.separator();
    t.row({"quo\"te", "x"});
    std::string csv = t.renderCsv();
    EXPECT_EQ(csv, "a,b\nplain,\"1,000\"\n\"quo\"\"te\",x\n");
}
