/**
 * @file
 * Unit tests of the PRESS distribution policy (Section 2.2), using a
 * recording fake comm layer so each rule can be exercised in isolation.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/press_server.hpp"
#include "core/wire.hpp"

using namespace press;
using namespace press::core;
using storage::FileId;

namespace {

/** Records outgoing traffic; can inject incoming messages. */
class FakeComm : public ClusterComm
{
  public:
    struct Sent {
        int dst;
        MsgKind kind;
        WireMsg msg;
    };
    std::vector<Sent> sent;

    void
    sendLoad(int dst, const LoadMsg &m) override
    {
        record(dst, MsgKind::Load, m);
    }
    void
    sendForward(int dst, const ForwardMsg &m) override
    {
        record(dst, MsgKind::Forward, m);
    }
    void
    sendCaching(int dst, const CachingMsg &m) override
    {
        record(dst, MsgKind::Caching, m);
    }
    void
    sendFile(int dst, const FileMsg &m) override
    {
        record(dst, MsgKind::File, m);
    }

    /** Inject a message as if it arrived from @p from. */
    template <typename T>
    void
    inject(MsgKind kind, int from, T body, int piggy = -1)
    {
        WireMsg w;
        w.kind = kind;
        w.from = from;
        w.piggyLoad = piggy;
        w.body = std::move(body);
        auto payload = net::makePayload<WireMsg>(w);
        deliver(toIncoming(*net::payloadAs<WireMsg>(payload), payload));
    }

    int
    count(MsgKind kind) const
    {
        int c = 0;
        for (const auto &s : sent)
            c += s.kind == kind;
        return c;
    }

  private:
    template <typename T>
    void
    record(int dst, MsgKind kind, T body)
    {
        WireMsg w;
        w.kind = kind;
        w.from = -1;
        w.body = std::move(body);
        sent.push_back(Sent{dst, kind, std::move(w)});
    }
};

/** A single server instance on a 4-node cluster's node 0. */
struct ServerRig {
    PressConfig config;
    sim::Simulator sim;
    std::unique_ptr<osnode::Node> node;
    storage::FileSet files;
    FakeComm comm;
    std::unique_ptr<PressServer> server;
    std::vector<std::uint64_t> replies;

    explicit ServerRig(Dissemination diss = Dissemination::piggyBack(),
                       std::vector<std::uint32_t> sizes = {})
    {
        config.nodes = 4;
        config.dissemination = diss;
        config.cacheBytes = 1000000; // 1 MB cache for small scenarios
        if (sizes.empty())
            sizes = {10000, 20000, 30000, 600000, 10000};
        files = storage::FileSet(std::move(sizes));
        node = std::make_unique<osnode::Node>(sim, 0);
        server = std::make_unique<PressServer>(sim, config, 0, *node,
                                               files, comm, 99);
    }

    void
    request(FileId file)
    {
        server->handleClientRequest(
            file, [this](std::uint64_t b) { replies.push_back(b); });
    }
};

} // namespace

TEST(ServerPolicy, FirstAccessServedLocallyAndCached)
{
    ServerRig rig;
    rig.request(0);
    rig.sim.run();
    // Served locally from disk, cached, reply sent.
    EXPECT_EQ(rig.comm.count(MsgKind::Forward), 0);
    EXPECT_EQ(rig.server->stats().localDiskReads, 1u);
    EXPECT_EQ(rig.server->stats().cacheInsertions, 1u);
    EXPECT_TRUE(rig.server->cache().contains(0));
    ASSERT_EQ(rig.replies.size(), 1u);
    // Reply = file + HTTP headers.
    EXPECT_EQ(rig.replies[0],
              10000u + rig.config.calibration.sizes.httpReplyHeader);
    // Caching information broadcast to the other 3 nodes.
    EXPECT_EQ(rig.comm.count(MsgKind::Caching), 3);
}

TEST(ServerPolicy, SecondAccessIsCacheHit)
{
    ServerRig rig;
    rig.request(0);
    rig.sim.run();
    rig.request(0);
    rig.sim.run();
    EXPECT_EQ(rig.server->stats().localCacheHits, 1u);
    EXPECT_EQ(rig.server->stats().localDiskReads, 1u);
    EXPECT_EQ(rig.replies.size(), 2u);
}

TEST(ServerPolicy, RemoteCachedFileIsForwarded)
{
    ServerRig rig;
    // Node 2 announces it caches file 1.
    rig.comm.inject(MsgKind::Caching, 2, CachingMsg{1, true});
    rig.request(1);
    rig.sim.run();
    ASSERT_EQ(rig.comm.count(MsgKind::Forward), 1);
    EXPECT_EQ(rig.comm.sent[0].dst, 2);
    EXPECT_EQ(rig.server->stats().forwardedOut, 1u);
    // No reply yet: waiting for the file.
    EXPECT_TRUE(rig.replies.empty());
}

TEST(ServerPolicy, FileArrivalCompletesForwardedRequest)
{
    ServerRig rig;
    rig.comm.inject(MsgKind::Caching, 2, CachingMsg{1, true});
    rig.request(1);
    rig.sim.run();
    ASSERT_EQ(rig.comm.count(MsgKind::Forward), 1);
    const auto *fwd = std::get_if<ForwardMsg>(&rig.comm.sent[0].msg.body);
    ASSERT_TRUE(fwd);
    rig.comm.inject(MsgKind::File, 2, FileMsg{1, fwd->tag, 20000});
    rig.sim.run();
    ASSERT_EQ(rig.replies.size(), 1u);
    EXPECT_EQ(rig.replies[0],
              20000u + rig.config.calibration.sizes.httpReplyHeader);
    // The initial node does NOT cache a file received from a service
    // node (Section 2.2).
    EXPECT_FALSE(rig.server->cache().contains(1));
}

TEST(ServerPolicy, LargeFilesAlwaysLocal)
{
    ServerRig rig;
    // File 3 is 600 KB >= the 512 KB cutoff; even though node 1 caches
    // it, the initial node serves it itself.
    rig.comm.inject(MsgKind::Caching, 1, CachingMsg{3, true});
    rig.request(3);
    rig.sim.run();
    EXPECT_EQ(rig.comm.count(MsgKind::Forward), 0);
    EXPECT_EQ(rig.server->stats().largeFileServes, 1u);
    EXPECT_EQ(rig.server->stats().localDiskReads, 1u);
    // Large files bypass the cache (they would evict everything).
    EXPECT_FALSE(rig.server->cache().contains(3));
    EXPECT_EQ(rig.replies.size(), 1u);
}

TEST(ServerPolicy, OverloadedCandidateServedLocallyCreatesReplica)
{
    ServerRig rig;
    // Node 2 caches file 1 but reports load above T=80; this node and
    // the least-loaded node are idle, so PRESS replicates locally.
    rig.comm.inject(MsgKind::Caching, 2, CachingMsg{1, true});
    rig.comm.inject(MsgKind::Load, 2, LoadMsg{100});
    rig.request(1);
    rig.sim.run();
    EXPECT_EQ(rig.comm.count(MsgKind::Forward), 0);
    EXPECT_EQ(rig.server->stats().overloadLocalServes, 1u);
    EXPECT_TRUE(rig.server->cache().contains(1));
}

TEST(ServerPolicy, AllOverloadedStillForwards)
{
    ServerRig rig;
    rig.comm.inject(MsgKind::Caching, 2, CachingMsg{1, true});
    for (int n = 1; n < 4; ++n)
        rig.comm.inject(MsgKind::Load, n, LoadMsg{200});
    // Drive this node's own load above T with many open requests; the
    // request for file 1 parses last, while they are all still open.
    for (int i = 0; i < 100; ++i)
        rig.request(4);
    rig.request(1);
    rig.sim.run();
    EXPECT_GE(rig.comm.count(MsgKind::Forward), 1);
}

TEST(ServerPolicy, ForwardedRequestServedAndFileSentBack)
{
    ServerRig rig;
    // A forward arrives for file 0 (not yet cached here): disk read,
    // cache insert, file sent back to the requester.
    rig.comm.inject(MsgKind::Forward, 3, ForwardMsg{0, 42});
    rig.sim.run();
    ASSERT_EQ(rig.comm.count(MsgKind::File), 1);
    const auto &sent = rig.comm.sent.back();
    EXPECT_EQ(sent.dst, 3);
    const auto *fm = std::get_if<FileMsg>(&sent.msg.body);
    ASSERT_TRUE(fm);
    EXPECT_EQ(fm->file, 0u);
    EXPECT_EQ(fm->tag, 42u);
    EXPECT_EQ(fm->bytes, 10000u);
    EXPECT_EQ(rig.server->stats().forwardedIn, 1u);
    EXPECT_EQ(rig.server->stats().serviceDiskReads, 1u);
    EXPECT_TRUE(rig.server->cache().contains(0));
}

TEST(ServerPolicy, PiggyLoadUpdatesDirectory)
{
    ServerRig rig;
    rig.comm.inject(MsgKind::Caching, 1, CachingMsg{0, true}, 33);
    EXPECT_EQ(rig.server->loadDirectory().load(1), 33);
}

TEST(ServerPolicy, BroadcastDisseminationSendsLoad)
{
    ServerRig rig(Dissemination::broadcast(1));
    rig.request(0);
    rig.sim.run();
    // Load changed by >= 1 at least twice (open, close): broadcasts to
    // the 3 other nodes happened.
    EXPECT_GE(rig.comm.count(MsgKind::Load), 3);
}

TEST(ServerPolicy, ThresholdSuppressesBroadcasts)
{
    ServerRig rig16(Dissemination::broadcast(16));
    rig16.request(0);
    rig16.sim.run();
    EXPECT_EQ(rig16.comm.count(MsgKind::Load), 0);
}

TEST(ServerPolicy, NlbForwardsWithoutLoadInfo)
{
    ServerRig rig(Dissemination::none());
    rig.comm.inject(MsgKind::Caching, 2, CachingMsg{1, true});
    // Candidate "overloaded" — NLB ignores load entirely and forwards.
    rig.comm.inject(MsgKind::Load, 2, LoadMsg{1000});
    rig.request(1);
    rig.sim.run();
    EXPECT_EQ(rig.comm.count(MsgKind::Forward), 1);
}

TEST(ServerPolicy, EvictionBroadcastsUncaching)
{
    // Cache sized to hold exactly one of the 10 KB files.
    ServerRig rig(Dissemination::piggyBack(),
                  {10000, 10000, 10000, 10000});
    rig.config.cacheBytes = 15000;
    // Rebuild the server with the small cache.
    rig.server = std::make_unique<PressServer>(
        rig.sim, rig.config, 0, *rig.node, rig.files, rig.comm, 99);
    rig.request(0);
    rig.sim.run();
    rig.comm.sent.clear();
    rig.request(1); // evicts 0
    rig.sim.run();
    EXPECT_EQ(rig.server->stats().cacheEvictions, 1u);
    // Both the insertion of 1 and the eviction of 0 broadcast: 3 nodes
    // each.
    EXPECT_EQ(rig.comm.count(MsgKind::Caching), 6);
    EXPECT_FALSE(rig.server->cache().contains(0));
}

TEST(ServerPolicy, LatencyAccountedPerReply)
{
    ServerRig rig;
    rig.request(0);
    rig.sim.run();
    EXPECT_EQ(rig.server->stats().latency.count(), 1u);
    EXPECT_GT(rig.server->stats().latency.mean(), 0.0);
}
