/**
 * @file
 * Tests for util::RingQueue: FIFO order across wraparound, growth while
 * wrapped, and move-only element support — the properties the simulator
 * hot paths (resource queues, credit backlogs, pending sends) rely on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "util/ring_queue.hpp"

using press::util::RingQueue;

TEST(RingQueue, StartsEmpty)
{
    RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(RingQueue, FifoOrder)
{
    RingQueue<int> q;
    for (int i = 0; i < 5; ++i)
        q.push_back(i);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsAroundAtCapacity)
{
    // The initial buffer holds 8 slots. Keep the queue at a steady
    // depth below that while pushing far more elements than the
    // capacity, so head/tail wrap the power-of-two mask many times;
    // FIFO order must survive every wrap without growing.
    RingQueue<int> q;
    int next_in = 0;
    int next_out = 0;
    for (int i = 0; i < 6; ++i)
        q.push_back(next_in++);
    for (int round = 0; round < 100; ++round) {
        q.push_back(next_in++);
        q.push_back(next_in++);
        EXPECT_EQ(q.front(), next_out);
        q.pop_front();
        ++next_out;
        EXPECT_EQ(q.front(), next_out);
        q.pop_front();
        ++next_out;
        EXPECT_EQ(q.size(), 6u);
    }
    while (!q.empty()) {
        EXPECT_EQ(q.front(), next_out++);
        q.pop_front();
    }
    EXPECT_EQ(next_out, next_in);
}

TEST(RingQueue, GrowsWhileWrapped)
{
    // Wrap the head past the start of the buffer, then push through
    // several capacity doublings (8 -> 16 -> ... -> 512). grow() must
    // relinearize the wrapped contents in FIFO order.
    RingQueue<int> q;
    int next_in = 0;
    int next_out = 0;
    for (int i = 0; i < 8; ++i)
        q.push_back(next_in++); // fill the initial capacity exactly
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(q.front(), next_out++);
        q.pop_front(); // head now mid-buffer
    }
    for (int i = 0; i < 500; ++i)
        q.push_back(next_in++); // wraps, then grows repeatedly
    EXPECT_EQ(q.size(), 503u);
    while (!q.empty()) {
        EXPECT_EQ(q.front(), next_out++);
        q.pop_front();
    }
    EXPECT_EQ(next_out, next_in);
}

TEST(RingQueue, DrainToEmptyAndReuse)
{
    RingQueue<int> q;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 7; ++i)
            q.push_back(round * 100 + i);
        for (int i = 0; i < 7; ++i) {
            EXPECT_EQ(q.front(), round * 100 + i);
            q.pop_front();
        }
        EXPECT_TRUE(q.empty());
    }
}

TEST(RingQueue, MoveOnlyElements)
{
    RingQueue<std::unique_ptr<int>> q;
    for (int i = 0; i < 40; ++i) {
        q.push_back(std::make_unique<int>(i));
        if (i % 3 == 2) {
            // pop_front resets the vacated slot, so the element's
            // ownership must have fully moved out by then.
            std::unique_ptr<int> out = std::move(q.front());
            q.pop_front();
            ASSERT_TRUE(out);
        }
    }
    int expect = 40 - static_cast<int>(q.size());
    while (!q.empty()) {
        ASSERT_TRUE(q.front());
        EXPECT_GE(*q.front(), 0);
        q.pop_front();
        ++expect;
    }
    EXPECT_EQ(expect, 40);
}
