/**
 * @file
 * Golden-stats regression test for full cluster runs.
 *
 * The event kernel's determinism contract is that every run is
 * bit-identical across kernel rewrites: same (tick, insertion-order)
 * event ordering, same RNG streams, same floating-point accumulation
 * order. These baselines were captured from complete cluster runs and
 * are compared exactly (EXPECT_EQ on doubles, no tolerance) — any
 * drift means event ordering changed somewhere, which would silently
 * invalidate cross-version bench comparisons.
 *
 * If a deliberate simulation-model change moves these numbers, rebase
 * the constants from a trusted build and say so in the commit.
 */

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace press;

namespace {

workload::Trace
goldenTrace()
{
    auto spec = workload::clarknetSpec();
    spec.numRequests = 30000;
    return workload::generateTrace(spec);
}

core::ClusterResults
runGolden(core::PressConfig config, const workload::Trace &trace,
          std::uint64_t *events, sim::Tick *now)
{
    core::PressCluster cluster(config, trace);
    auto r = cluster.run(20000);
    *events = cluster.simulator().eventsExecuted();
    *now = cluster.simulator().now();
    return r;
}

} // namespace

TEST(GoldenStats, ViaV5EightNodes)
{
    auto trace = goldenTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V5;
    config.nodes = 8;
    std::uint64_t events = 0;
    sim::Tick now = 0;
    auto r = runGolden(config, trace, &events, &now);

    EXPECT_EQ(r.throughput, 776.36025347544796);
    EXPECT_EQ(r.avgLatencyMs, 857.81063838959994);
    EXPECT_EQ(r.p99LatencyMs, 4123.7166063668265);
    EXPECT_EQ(r.requestsMeasured, 20703u);
    EXPECT_EQ(r.forwardFraction, 0.27324999999999999);
    EXPECT_EQ(r.localHitFraction, 0.29339999999999999);
    EXPECT_EQ(r.diskReads, 8667u);
    EXPECT_EQ(events, 1466866u);
    EXPECT_EQ(now, 61610327825);
}

TEST(GoldenStats, TcpFastEthernetEightNodes)
{
    auto trace = goldenTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::TcpFastEthernet;
    config.nodes = 8;
    std::uint64_t events = 0;
    sim::Tick now = 0;
    auto r = runGolden(config, trace, &events, &now);

    EXPECT_EQ(r.throughput, 789.01000404008744);
    EXPECT_EQ(r.avgLatencyMs, 838.33572286675053);
    EXPECT_EQ(r.p99LatencyMs, 4105.5948402680779);
    EXPECT_EQ(r.requestsMeasured, 20703u);
    EXPECT_EQ(r.forwardFraction, 0.28915000000000002);
    EXPECT_EQ(r.localHitFraction, 0.28670000000000001);
    EXPECT_EQ(r.diskReads, 8483u);
    EXPECT_EQ(events, 1725488u);
    EXPECT_EQ(now, 61002992301);
}

TEST(GoldenStats, ViaV0FourNodes)
{
    auto trace = goldenTrace();
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V0;
    config.nodes = 4;
    std::uint64_t events = 0;
    sim::Tick now = 0;
    auto r = runGolden(config, trace, &events, &now);

    EXPECT_EQ(r.throughput, 578.84591403127808);
    EXPECT_EQ(r.avgLatencyMs, 574.84189742335059);
    EXPECT_EQ(r.p99LatencyMs, 3953.5549513259143);
    EXPECT_EQ(r.requestsMeasured, 20351u);
    EXPECT_EQ(r.forwardFraction, 0.2848);
    EXPECT_EQ(r.localHitFraction, 0.42564999999999997);
    EXPECT_EQ(r.diskReads, 5791u);
    EXPECT_EQ(events, 1029453u);
    EXPECT_EQ(now, 100009484492);
}
