/**
 * @file
 * Tests of the fault-tolerance subsystem: FaultPlan construction and
 * validation, RetryPolicy backoff, MembershipView merge rules, and
 * full-cluster churn scenarios. The churn scenarios carry the
 * subsystem's two contracts: zero lost requests (every request issued
 * to a crashed node is eventually answered via server-side retry or
 * client re-issue) and determinism (a faulty run is byte-identical
 * across reruns, worker-thread counts, and the tick-race hunter's
 * equal-tick permutations).
 */

#include <gtest/gtest.h>

#include <bit>
#include <sstream>
#include <string>

#include "check/tick_race.hpp"
#include "core/cluster.hpp"
#include "fault/fault_plan.hpp"
#include "fault/membership.hpp"
#include "obs/trace_io.hpp"
#include "workload/trace_gen.hpp"

using namespace press;
using fault::FaultKind;
using fault::FaultPlan;
using fault::MembershipView;
using fault::NodeState;
using fault::PlanError;

// ---------------------------------------------------------------------
// FaultPlan: grammar, validation, epochs, backoff
// ---------------------------------------------------------------------

TEST(FaultPlan, ParseRoundTripsThroughSpec)
{
    FaultPlan plan =
        FaultPlan::parse("crash:3@2s;crash:5@2500ms;restart:3@4s");
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.events()[0].kind, FaultKind::Crash);
    EXPECT_EQ(plan.events()[0].node, 3);
    EXPECT_EQ(plan.events()[0].at, 2 * util::SEC);
    EXPECT_EQ(plan.events()[1].at, 2500 * util::MS);
    EXPECT_EQ(plan.events()[2].kind, FaultKind::Restart);

    FaultPlan again = FaultPlan::parse(plan.spec());
    ASSERT_EQ(again.size(), plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(again.events()[i].kind, plan.events()[i].kind);
        EXPECT_EQ(again.events()[i].node, plan.events()[i].node);
        EXPECT_EQ(again.events()[i].at, plan.events()[i].at);
    }
}

TEST(FaultPlan, ParseAcceptsAllUnitsAndVerbs)
{
    FaultPlan plan = FaultPlan::parse(
        "leave:1@500us;join:1@80ms;crash:2@1s;restart:2@2s");
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.events()[0].kind, FaultKind::Leave);
    EXPECT_EQ(plan.events()[0].at, 500 * util::US);
    EXPECT_EQ(plan.events()[1].kind, FaultKind::Join);
    EXPECT_EQ(plan.events()[1].at, 80 * util::MS);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("explode:1@2s"), PlanError);
    EXPECT_THROW(FaultPlan::parse("crash:1"), PlanError);
    EXPECT_THROW(FaultPlan::parse("crash@2s"), PlanError);
    EXPECT_THROW(FaultPlan::parse("crash:1@2parsecs"), PlanError);
    EXPECT_THROW(FaultPlan::parse("crash:x@2s"), PlanError);
    EXPECT_THROW(FaultPlan::parse(";"), PlanError);
}

TEST(FaultPlan, ValidateEnforcesTheNodeStateMachine)
{
    // Node id out of range.
    EXPECT_THROW(FaultPlan().crash(9, util::SEC).validate(8), PlanError);
    // Crash while already down.
    EXPECT_THROW(FaultPlan()
                     .crash(1, util::SEC)
                     .crash(1, 2 * util::SEC)
                     .validate(8),
                 PlanError);
    // Restart while up.
    EXPECT_THROW(FaultPlan().restart(1, util::SEC).validate(8),
                 PlanError);
    // Revive before the drain gap.
    EXPECT_THROW(FaultPlan()
                     .crash(1, util::SEC)
                     .restart(1, util::SEC + FaultPlan::minReviveGap / 2)
                     .validate(8),
                 PlanError);
    // Never every node down at once.
    EXPECT_THROW(
        FaultPlan().crash(0, util::SEC).crash(1, util::SEC).validate(2),
        PlanError);
    // A well-formed plan passes.
    EXPECT_NO_THROW(FaultPlan()
                        .crash(1, util::SEC)
                        .restart(1, 2 * util::SEC)
                        .validate(8));
}

TEST(FaultPlan, TimelineAssignsGlobalEpochsInTickOrder)
{
    FaultPlan plan;
    plan.crash(5, 3 * util::SEC); // inserted first, fires last
    plan.crash(1, util::SEC);
    plan.restart(1, 2 * util::SEC);
    auto line = plan.timeline();
    ASSERT_EQ(line.size(), 3u);
    EXPECT_EQ(line[0].node, 1);
    EXPECT_EQ(line[0].epoch, 1u);
    EXPECT_EQ(line[1].kind, FaultKind::Restart);
    EXPECT_EQ(line[1].epoch, 2u);
    EXPECT_EQ(line[2].node, 5);
    EXPECT_EQ(line[2].epoch, 3u);
}

TEST(FaultPlan, RetryPolicyDoublesUpToTheCap)
{
    fault::RetryPolicy p;
    p.base = 500 * util::US;
    p.cap = 8 * util::MS;
    EXPECT_EQ(p.delayFor(0), 500 * util::US);
    EXPECT_EQ(p.delayFor(1), 1 * util::MS);
    EXPECT_EQ(p.delayFor(2), 2 * util::MS);
    EXPECT_EQ(p.delayFor(4), 8 * util::MS);
    EXPECT_EQ(p.delayFor(10), 8 * util::MS); // capped
    EXPECT_EQ(p.delayFor(-3), 500 * util::US);
}

// ---------------------------------------------------------------------
// MembershipView: order-free merge
// ---------------------------------------------------------------------

TEST(Membership, MergesByEpochThenStateRank)
{
    MembershipView v(4, 0);
    EXPECT_TRUE(v.apply(2, NodeState::Suspected, 1, 10));
    // Same epoch, more advanced state: accepted.
    EXPECT_TRUE(v.apply(2, NodeState::Dead, 1, 20));
    // Same epoch, regression: rejected.
    EXPECT_FALSE(v.apply(2, NodeState::Suspected, 1, 30));
    // Higher epoch always wins, even back to Alive.
    EXPECT_TRUE(v.apply(2, NodeState::Alive, 2, 40));
    EXPECT_FALSE(v.apply(2, NodeState::Dead, 1, 50)); // stale rumor
    EXPECT_EQ(v.state(2), NodeState::Alive);
    EXPECT_EQ(v.epoch(2), 2u);
}

TEST(Membership, ConvergesToTheSameFixedPointInAnyOrder)
{
    // The same three rumors in two arrival orders must agree.
    MembershipView a(4, 0), b(4, 1);
    a.apply(3, NodeState::Dead, 4, 10);
    a.apply(3, NodeState::Suspected, 4, 11);
    a.apply(3, NodeState::Alive, 5, 12);

    b.apply(3, NodeState::Alive, 5, 10);
    b.apply(3, NodeState::Dead, 4, 11);
    b.apply(3, NodeState::Suspected, 4, 12);

    EXPECT_EQ(a.state(3), b.state(3));
    EXPECT_EQ(a.epoch(3), b.epoch(3));
    EXPECT_EQ(a.state(3), NodeState::Alive);
}

TEST(Membership, TracksDeadSinceAndAliveCount)
{
    MembershipView v(4, 0);
    EXPECT_EQ(v.aliveCount(), 4);
    EXPECT_EQ(v.deadSince(2), 0);
    v.apply(2, NodeState::Dead, 1, 77);
    EXPECT_EQ(v.aliveCount(), 3);
    EXPECT_EQ(v.deadSince(2), 77);
    EXPECT_FALSE(v.aliveNode(2));
    v.apply(1, NodeState::Left, 2, 99);
    EXPECT_EQ(v.aliveCount(), 2);
    EXPECT_EQ(v.deadSince(1), 99);
}

// ---------------------------------------------------------------------
// Cluster churn scenarios
// ---------------------------------------------------------------------

namespace {

workload::Trace
churnTrace()
{
    auto spec = workload::clarknetSpec();
    spec.numRequests = 8000;
    return workload::generateTrace(spec);
}

/** 8 nodes, kill nodes 1 and 2 mid-trace, restart them later. */
core::PressConfig
churnConfig()
{
    core::PressConfig config;
    config.protocol = core::Protocol::ViaClan;
    config.version = core::Version::V5;
    config.nodes = 8;
    config.clientsPerNode = 4;
    config.warmupFraction = 0.0; // fault ticks are absolute sim time
    config.fault.crash(1, 200 * util::MS)
        .crash(2, 210 * util::MS)
        .restart(1, 600 * util::MS)
        .restart(2, 610 * util::MS);
    return config;
}

/** Everything a churn run can show the outside world, as one string. */
std::string
churnFingerprint(core::PressConfig config, const workload::Trace &trace)
{
    config.trace = true;
    core::PressCluster cluster(config, trace);
    auto r = cluster.run(8000);

    std::ostringstream fp;
    fp.precision(17);
    fp << "throughput " << r.throughput << "\n";
    fp << "p99_ms " << r.p99LatencyMs << "\n";
    fp << "p999_ms " << r.p999LatencyMs << "\n";
    fp << "measured " << r.requestsMeasured << "\n";
    fp << "lost " << r.requestsLost << "\n";
    fp << "retried " << r.requestsRetried << "\n";
    fp << "client_retries " << r.clientRetries << "\n";
    fp << "stale " << r.staleDrops << "\n";
    fp << "membership " << r.membershipSends << "\n";
    fp << "reannounced " << r.reAnnouncedFiles << "\n";
    fp << "dropped " << r.droppedSends << "\n";
    fp << "view_ms " << r.viewConvergeMs << "\n";
    for (auto b : r.replyBuckets)
        fp << b << " ";
    fp << "\n";
    fp << "events " << cluster.simulator().eventsExecuted() << "\n";
    fp << "now " << cluster.simulator().now() << "\n";
    cluster.dumpStats(fp);
    if (r.trace)
        obs::writeTrace(fp, *r.trace);
    return fp.str();
}

core::ClusterResults
runChurn(core::PressConfig config, const workload::Trace &trace)
{
    core::PressCluster cluster(config, trace);
    return cluster.run(8000);
}

} // namespace

TEST(FaultCluster, ChurnLosesNoRequestsAndRecovers)
{
    auto trace = churnTrace();
    core::PressConfig config = churnConfig();
    auto r = runChurn(config, trace);
    EXPECT_EQ(r.requestsLost, 0u);
    EXPECT_GT(r.requestsMeasured, 0u);
    // The dead-node scan re-issued what the crashed nodes dropped.
    EXPECT_GT(r.clientRetries, 0u);
    // Every survivor marked both dead nodes within the detector bound.
    EXPECT_GT(r.viewConvergeMs, 0.0);
    EXPECT_LE(r.viewConvergeMs,
              static_cast<double>(config.fault.suspectDelay +
                                  config.fault.confirmDelay) /
                      1e6 +
                  1.0);
    EXPECT_FALSE(r.replyBuckets.empty());
}

TEST(FaultCluster, ChurnIsByteIdenticalAcrossReruns)
{
    auto trace = churnTrace();
    std::string a = churnFingerprint(churnConfig(), trace);
    std::string b = churnFingerprint(churnConfig(), trace);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(FaultCluster, ChurnIsByteIdenticalAcrossThreadCounts)
{
    auto trace = churnTrace();
    core::PressConfig config = churnConfig();
    config.threads = 1;
    std::string base = churnFingerprint(config, trace);
    ASSERT_FALSE(base.empty());
    config.threads = 4;
    EXPECT_EQ(base, churnFingerprint(config, trace));
}

TEST(FaultCluster, ChurnSurvivesTickRacePermutations)
{
    // Gossip dissemination + sharded directory is the widest fault
    // surface: rumor relays, shard remaps, and re-announcements all
    // ride cross-domain messages at equal ticks.
    auto trace = churnTrace();
    core::PressConfig base = churnConfig();
    base.version = core::Version::V0;
    base.dissemination = core::Dissemination::gossip();
    base.directoryMode = core::DirectoryMode::Sharded;

    check::TickRaceHunter::Options opts;
    opts.seeds = 4;
    check::TickRaceHunter hunter(opts);
    hunter.addScenario(
        "churn/gossip-shard",
        [&base, &trace](sim::TieBreak policy, std::uint64_t seed) {
            core::PressConfig config = base;
            config.tieBreak = policy;
            config.tieBreakSeed = seed;
            config.trace = true;
            config.viaCheck = core::ViaCheck::Off;

            core::PressCluster cluster(config, trace);
            auto r = cluster.run(8000);

            check::RunFingerprint fp;
            fp.eventsExecuted = cluster.simulator().eventsExecuted();
            fp.finalTick = cluster.simulator().now();
            std::uint64_t h = 0;
            h = check::hashCombine(
                h, std::bit_cast<std::uint64_t>(r.throughput));
            h = check::hashCombine(
                h, std::bit_cast<std::uint64_t>(r.p99LatencyMs));
            h = check::hashCombine(h, r.requestsMeasured);
            h = check::hashCombine(h, r.requestsLost);
            h = check::hashCombine(h, r.requestsRetried);
            h = check::hashCombine(h, r.clientRetries);
            h = check::hashCombine(h, r.membershipSends);
            fp.resultsHash = h;
            std::ostringstream headline;
            headline.precision(17);
            headline << "tput " << r.throughput << " lost "
                     << r.requestsLost << " retried "
                     << r.requestsRetried;
            fp.headline = headline.str();
            fp.trace = r.trace;
            return fp;
        });
    EXPECT_TRUE(hunter.run()) << hunter.report();
}

TEST(FaultCluster, ShardedDirectoryRebuildsAfterChurn)
{
    auto trace = churnTrace();
    core::PressConfig config = churnConfig();
    config.version = core::Version::V0;
    config.dissemination = core::Dissemination::gossip();
    config.directoryMode = core::DirectoryMode::Sharded;
    auto r = runChurn(config, trace);
    EXPECT_EQ(r.requestsLost, 0u);
    // Shard remap + handback re-announced moved ownership.
    EXPECT_GT(r.reAnnouncedFiles, 0u);
}

TEST(FaultCluster, TcpChurnLosesNoRequests)
{
    auto trace = churnTrace();
    core::PressConfig config = churnConfig();
    config.protocol = core::Protocol::TcpClan;
    config.version = core::Version::V0;
    auto r = runChurn(config, trace);
    EXPECT_EQ(r.requestsLost, 0u);
    EXPECT_GT(r.clientRetries, 0u);
}

TEST(FaultCluster, GracefulLeaveAndJoinLosesNoRequests)
{
    auto trace = churnTrace();
    core::PressConfig config = churnConfig();
    config.fault = FaultPlan();
    config.fault.leave(3, 200 * util::MS).join(3, 600 * util::MS);
    auto r = runChurn(config, trace);
    EXPECT_EQ(r.requestsLost, 0u);
}

// Regression: a node that is down while another node leaves learns of
// the departure only through the rejoin view-sync, whose Left entry
// used to be a pure no-op — the rejoiner kept routing shard lookups to
// the departed node forever and every client slot eventually stranded
// there. The Left apply path now schedules the hard teardown itself
// (epoch-gated against the survivors' pre-scheduled one).
TEST(FaultCluster, CrashOverlappingLeaveLosesNoRequests)
{
    auto trace = churnTrace();
    core::PressConfig config = churnConfig();
    config.version = core::Version::V0;
    config.dissemination = core::Dissemination::gossip();
    config.directoryMode = core::DirectoryMode::Sharded;
    config.fault = FaultPlan();
    config.fault.crash(1, 200 * util::MS)
        .leave(3, 250 * util::MS)
        .restart(1, 600 * util::MS);
    auto r = runChurn(config, trace);
    EXPECT_EQ(r.requestsLost, 0u);
}

TEST(FaultCluster, EmptyPlanDisablesTheFaultMachinery)
{
    auto trace = churnTrace();
    core::PressConfig config = churnConfig();
    config.fault = FaultPlan();
    auto r = runChurn(config, trace);
    EXPECT_EQ(r.requestsLost, 0u);
    EXPECT_EQ(r.clientRetries, 0u);
    EXPECT_EQ(r.membershipSends, 0u);
    EXPECT_TRUE(r.replyBuckets.empty());
}
