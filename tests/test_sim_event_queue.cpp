/**
 * @file
 * Tests for the event queue and the simulator clock/loop.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

using press::sim::EventQueue;
using press::sim::MaxTick;
using press::sim::Simulator;
using press::sim::Tick;

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> order;
    q.push(30, [&] { order.push_back(3); });
    q.push(10, [&] { order.push_back(1); });
    q.push(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.pop().second();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        q.push(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().second();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeOnEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.nextTime(), MaxTick);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FireNextRunsInInsertionOrderAtEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        q.push(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.fireNext();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, FireNextCallbackMayPushAtTheSameTick)
{
    // Slot storage is recycled; an event that schedules more work at
    // its own tick must still run after everything pushed before it.
    EventQueue q;
    std::vector<int> order;
    q.push(1, [&] {
        order.push_back(0);
        q.push(1, [&] { order.push_back(2); });
    });
    q.push(1, [&] { order.push_back(1); });
    while (!q.empty())
        q.fireNext();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, MixedTimesMatchReferenceOrdering)
{
    // Deterministic pseudo-random ticks with heavy collision; the
    // queue must reproduce a stable sort by (tick, insertion order).
    constexpr int kEvents = 5000;
    EventQueue q;
    std::vector<std::pair<Tick, int>> expected;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    std::vector<int> fired;
    for (int i = 0; i < kEvents; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Tick when = static_cast<Tick>(state % 64);
        expected.emplace_back(when, i);
        q.push(when, [&fired, i] { fired.push_back(i); });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    while (!q.empty())
        q.fireNext();
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(fired[i], expected[i].second) << "at position " << i;
}

TEST(EventQueue, SlotReuseKeepsFifoAcrossDrainCycles)
{
    // Drain and refill repeatedly so free-listed slots get reused with
    // fresh sequence numbers; FIFO among equal ticks must survive.
    EventQueue q;
    for (int cycle = 0; cycle < 50; ++cycle) {
        std::vector<int> order;
        for (int i = 0; i < 37; ++i)
            q.push(cycle, [&order, i] { order.push_back(i); });
        while (!q.empty())
            q.fireNext();
        for (int i = 0; i < 37; ++i)
            ASSERT_EQ(order[i], i) << "cycle " << cycle;
    }
}

TEST(Simulator, ClockAdvancesToEventTimes)
{
    Simulator sim;
    std::vector<Tick> seen;
    sim.schedule(100, [&] { seen.push_back(sim.now()); });
    sim.schedule(50, [&] { seen.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(seen, (std::vector<Tick>{50, 100}));
    EXPECT_EQ(sim.now(), 100);
    EXPECT_EQ(sim.eventsExecuted(), 2u);
}

TEST(Simulator, EventsScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 10)
            sim.schedule(7, chain);
    };
    sim.schedule(0, chain);
    sim.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(sim.now(), 9 * 7);
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(20, [&] { ++fired; });
    sim.schedule(30, [&] { ++fired; });
    sim.run(20);
    EXPECT_EQ(fired, 2); // events at t<=20 run
    EXPECT_EQ(sim.now(), 20);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, StepProcessesOneEvent)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1, [&] { ++fired; });
    sim.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime)
{
    Simulator sim;
    Tick when = -1;
    sim.schedule(42, [&] {
        sim.schedule(0, [&] { when = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(when, 42);
}

TEST(Simulator, IdleReflectsQueue)
{
    Simulator sim;
    EXPECT_TRUE(sim.idle());
    sim.schedule(1, [] {});
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_TRUE(sim.idle());
}
