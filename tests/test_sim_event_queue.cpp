/**
 * @file
 * Tests for the event queue and the simulator clock/loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

using press::sim::EventQueue;
using press::sim::MaxTick;
using press::sim::Simulator;
using press::sim::Tick;

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> order;
    q.push(30, [&] { order.push_back(3); });
    q.push(10, [&] { order.push_back(1); });
    q.push(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.pop().second();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        q.push(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().second();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeOnEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.nextTime(), MaxTick);
    EXPECT_TRUE(q.empty());
}

TEST(Simulator, ClockAdvancesToEventTimes)
{
    Simulator sim;
    std::vector<Tick> seen;
    sim.schedule(100, [&] { seen.push_back(sim.now()); });
    sim.schedule(50, [&] { seen.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(seen, (std::vector<Tick>{50, 100}));
    EXPECT_EQ(sim.now(), 100);
    EXPECT_EQ(sim.eventsExecuted(), 2u);
}

TEST(Simulator, EventsScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 10)
            sim.schedule(7, chain);
    };
    sim.schedule(0, chain);
    sim.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(sim.now(), 9 * 7);
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(20, [&] { ++fired; });
    sim.schedule(30, [&] { ++fired; });
    sim.run(20);
    EXPECT_EQ(fired, 2); // events at t<=20 run
    EXPECT_EQ(sim.now(), 20);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, StepProcessesOneEvent)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1, [&] { ++fired; });
    sim.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime)
{
    Simulator sim;
    Tick when = -1;
    sim.schedule(42, [&] {
        sim.schedule(0, [&] { when = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(when, 42);
}

TEST(Simulator, IdleReflectsQueue)
{
    Simulator sim;
    EXPECT_TRUE(sim.idle());
    sim.schedule(1, [] {});
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_TRUE(sim.idle());
}
