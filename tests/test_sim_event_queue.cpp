/**
 * @file
 * Tests for the event queue and the simulator clock/loop.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

using press::sim::EventQueue;
using press::sim::MaxTick;
using press::sim::Simulator;
using press::sim::Tick;

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> order;
    q.push(30, [&] { order.push_back(3); });
    q.push(10, [&] { order.push_back(1); });
    q.push(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.pop().second();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        q.push(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().second();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeOnEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.nextTime(), MaxTick);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FireNextRunsInInsertionOrderAtEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        q.push(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.fireNext();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, FireNextCallbackMayPushAtTheSameTick)
{
    // Slot storage is recycled; an event that schedules more work at
    // its own tick must still run after everything pushed before it.
    EventQueue q;
    std::vector<int> order;
    q.push(1, [&] {
        order.push_back(0);
        q.push(1, [&] { order.push_back(2); });
    });
    q.push(1, [&] { order.push_back(1); });
    while (!q.empty())
        q.fireNext();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, MixedTimesMatchReferenceOrdering)
{
    // Deterministic pseudo-random ticks with heavy collision; the
    // queue must reproduce a stable sort by (tick, insertion order).
    constexpr int kEvents = 5000;
    EventQueue q;
    std::vector<std::pair<Tick, int>> expected;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    std::vector<int> fired;
    for (int i = 0; i < kEvents; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Tick when = static_cast<Tick>(state % 64);
        expected.emplace_back(when, i);
        q.push(when, [&fired, i] { fired.push_back(i); });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    while (!q.empty())
        q.fireNext();
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(fired[i], expected[i].second) << "at position " << i;
}

TEST(EventQueue, SlotReuseKeepsFifoAcrossDrainCycles)
{
    // Drain and refill repeatedly so free-listed slots get reused with
    // fresh sequence numbers; FIFO among equal ticks must survive.
    EventQueue q;
    for (int cycle = 0; cycle < 50; ++cycle) {
        std::vector<int> order;
        for (int i = 0; i < 37; ++i)
            q.push(cycle, [&order, i] { order.push_back(i); });
        while (!q.empty())
            q.fireNext();
        for (int i = 0; i < 37; ++i)
            ASSERT_EQ(order[i], i) << "cycle " << cycle;
    }
}

namespace {

/** Push the same equal-tick multi-domain workload and return the pop
 *  order: 6 domains x 8 events each, all at tick 5. */
std::vector<int>
permutedOrder(press::sim::TieBreak policy, std::uint64_t seed)
{
    EventQueue q;
    q.setTieBreak(policy, seed);
    std::vector<int> order;
    for (int i = 0; i < 48; ++i)
        q.push(5, [&order, i] { order.push_back(i); }, i % 6);
    while (!q.empty())
        q.fireNext();
    return order;
}

} // namespace

TEST(EventQueueTieBreak, FifoWithDomainsIsBitIdenticalToInsertion)
{
    // Domains are inert under the default policy: pop order is pure
    // insertion order, exactly as before domains existed.
    auto order = permutedOrder(press::sim::TieBreak::Fifo, 0);
    for (int i = 0; i < 48; ++i)
        ASSERT_EQ(order[i], i);
}

TEST(EventQueueTieBreak, SeededPermuteIsDeterministicPerSeed)
{
    auto a = permutedOrder(press::sim::TieBreak::SeededPermute, 42);
    auto b = permutedOrder(press::sim::TieBreak::SeededPermute, 42);
    EXPECT_EQ(a, b);
}

TEST(EventQueueTieBreak, SeededPermuteDiffersAcrossSeedsAndFromFifo)
{
    auto fifo = permutedOrder(press::sim::TieBreak::Fifo, 0);
    auto s1 = permutedOrder(press::sim::TieBreak::SeededPermute, 1);
    auto s2 = permutedOrder(press::sim::TieBreak::SeededPermute, 2);
    // 6 domains at one tick: the odds of any seed reproducing another
    // order are 1/6! per pair; these specific seeds must differ (the
    // hash is fixed, so this is deterministic, not flaky).
    EXPECT_NE(s1, fifo);
    EXPECT_NE(s2, fifo);
    EXPECT_NE(s1, s2);
}

TEST(EventQueueTieBreak, SeededPermutePreservesIntraDomainFifo)
{
    auto order = permutedOrder(press::sim::TieBreak::SeededPermute, 7);
    ASSERT_EQ(order.size(), 48u);
    // Within each domain (payloads congruent mod 6) insertion order
    // must survive any cross-domain shuffle.
    for (int d = 0; d < 6; ++d) {
        std::vector<int> in_domain;
        for (int v : order)
            if (v % 6 == d)
                in_domain.push_back(v);
        ASSERT_EQ(in_domain.size(), 8u);
        for (std::size_t i = 1; i < in_domain.size(); ++i)
            EXPECT_LT(in_domain[i - 1], in_domain[i]) << "domain " << d;
    }
}

TEST(EventQueueTieBreak, SeededPermuteStillOrdersByTime)
{
    // Permutation only touches equal-tick ties; across ticks the queue
    // is still a time queue.
    EventQueue q;
    q.setTieBreak(press::sim::TieBreak::SeededPermute, 99);
    std::vector<Tick> fired;
    for (int i = 0; i < 200; ++i) {
        Tick when = (i * 37) % 50;
        q.push(when, [&fired, when] { fired.push_back(when); },
               i % 4);
    }
    while (!q.empty())
        q.fireNext();
    ASSERT_EQ(fired.size(), 200u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
}

TEST(EventQueueTieBreak, SlotReuseKeepsPermutationDeterministic)
{
    // Free-listed slots are recycled with fresh sequence numbers across
    // drain cycles; the permuted order must stay a pure function of
    // (seed, push sequence), not of slot numbers.
    auto run = [](std::uint64_t seed) {
        EventQueue q;
        q.setTieBreak(press::sim::TieBreak::SeededPermute, seed);
        std::vector<int> order;
        for (int cycle = 0; cycle < 20; ++cycle) {
            for (int i = 0; i < 23; ++i)
                q.push(cycle, [&order, i] { order.push_back(i); },
                       i % 5);
            while (!q.empty())
                q.fireNext();
        }
        return order;
    };
    EXPECT_EQ(run(3), run(3));
    EXPECT_NE(run(3), run(4));
}

TEST(SimulatorDomains, ScheduleInheritsTheFiringDomain)
{
    Simulator sim;
    press::sim::Domain seen = press::sim::NoDomain;
    sim.setCurrentDomain(2);
    sim.schedule(5, [&] {
        // Chained work stays in the chain's domain automatically.
        sim.schedule(5, [&] { seen = sim.currentDomain(); });
    });
    sim.setCurrentDomain(press::sim::NoDomain);
    sim.run();
    EXPECT_EQ(seen, 2);
}

TEST(SimulatorDomains, ScheduleInOverridesInheritance)
{
    Simulator sim;
    press::sim::Domain seen = press::sim::NoDomain;
    sim.setCurrentDomain(1);
    sim.scheduleIn(4, 10, [&] { seen = sim.currentDomain(); });
    sim.run();
    EXPECT_EQ(seen, 4);
}

TEST(SimulatorDomains, ScheduleObserverSeesEveryEdge)
{
    struct Edges : press::sim::ScheduleObserver {
        struct Edge {
            Tick now, when;
            press::sim::Domain from, to;
        };
        std::vector<Edge> edges;
        void
        onSchedule(Tick now, Tick when, press::sim::Domain from,
                   press::sim::Domain to) override
        {
            edges.push_back({now, when, from, to});
        }
    };
    Simulator sim;
    Edges obs;
    sim.setScheduleObserver(&obs);
    sim.setCurrentDomain(0);
    sim.schedule(10, [&] { sim.scheduleIn(3, 7, [] {}); });
    sim.run();
    ASSERT_EQ(obs.edges.size(), 2u);
    EXPECT_EQ(obs.edges[0].from, 0);
    EXPECT_EQ(obs.edges[0].to, 0);
    EXPECT_EQ(obs.edges[1].now, 10);
    EXPECT_EQ(obs.edges[1].when, 17);
    EXPECT_EQ(obs.edges[1].from, 0);
    EXPECT_EQ(obs.edges[1].to, 3);
}

TEST(Simulator, ClockAdvancesToEventTimes)
{
    Simulator sim;
    std::vector<Tick> seen;
    sim.schedule(100, [&] { seen.push_back(sim.now()); });
    sim.schedule(50, [&] { seen.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(seen, (std::vector<Tick>{50, 100}));
    EXPECT_EQ(sim.now(), 100);
    EXPECT_EQ(sim.eventsExecuted(), 2u);
}

TEST(Simulator, EventsScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 10)
            sim.schedule(7, chain);
    };
    sim.schedule(0, chain);
    sim.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(sim.now(), 9 * 7);
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(20, [&] { ++fired; });
    sim.schedule(30, [&] { ++fired; });
    sim.run(20);
    EXPECT_EQ(fired, 2); // events at t<=20 run
    EXPECT_EQ(sim.now(), 20);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, StepProcessesOneEvent)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1, [&] { ++fired; });
    sim.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime)
{
    Simulator sim;
    Tick when = -1;
    sim.schedule(42, [&] {
        sim.schedule(0, [&] { when = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(when, 42);
}

TEST(Simulator, IdleReflectsQueue)
{
    Simulator sim;
    EXPECT_TRUE(sim.idle());
    sim.schedule(1, [] {});
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_TRUE(sim.idle());
}
